// Sentinel loop (Section 4.6.5): copy a NUL-terminated byte string while
// doubling each byte's value, stopping on the terminator. The trip count is
// computed *by the loop itself*, so neither the compiler nor a library
// hand-coder can size the vectors; the DSA speculates a range, executes it
// on NEON, and lets the ARM core finish the tail.
#include "prog/assembler.h"
#include "vectorizer/static_vectorizer.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using prog::Assembler;

namespace {

constexpr std::uint32_t kSrc = 0x10000;
constexpr std::uint32_t kDst = 0x40000;

prog::Program BuildScalar() {
  Assembler as;
  as.Movi(0, kSrc);
  as.Movi(1, kDst);
  as.Movi(10, 1);  // shift amount for *2
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldrb(4, 0, 1);
  as.Alu(Opcode::kLsl, 5, 4, 10);
  as.Strb(5, 1, 1);
  as.Cmpi(4, 0);
  as.B(Cond::kNe, loop);
  as.Halt();
  return as.Finish();
}

}  // namespace

sim::Workload MakeStrCopy(int length) {
  sim::Workload wl;
  wl.name = "StrCopy";
  wl.mem_bytes = 1 << 20;
  wl.scalar = BuildScalar();
  // Neither static technique can vectorize a sentinel loop: both ship the
  // scalar loop; the auto-vectorizer additionally pays its guard check.
  {
    Assembler as;
    as.Movi(0, kSrc);
    as.Movi(1, kDst);
    as.Movi(10, 1);
    vectorizer::EmitAutoVecGuard(as, 0, 1, 6);
    const auto loop = as.NewLabel();
    as.Bind(loop);
    as.Ldrb(4, 0, 1);
    as.Alu(Opcode::kLsl, 5, 4, 10);
    as.Strb(5, 1, 1);
    as.Cmpi(4, 0);
    as.B(Cond::kNe, loop);
    as.Halt();
    wl.autovec = as.Finish();
  }
  wl.handvec = BuildScalar();
  wl.loop_type_fractions = {{"sentinel", 1.0}};
  wl.stream_bytes = 2u * static_cast<std::uint32_t>(length + 1);

  std::vector<std::uint8_t> src(length + 1);
  std::vector<std::uint8_t> dst(length + 1);
  std::uint32_t seed = 0x57C0F9EEu;
  for (int i = 0; i < length; ++i) {
    src[i] = static_cast<std::uint8_t>(1 + XorShift(seed) % 100);
  }
  src[length] = 0;
  for (int i = 0; i <= length; ++i) {
    dst[i] = static_cast<std::uint8_t>(src[i] << 1);
  }
  wl.init = [src](mem::Memory& m) { WriteVec(m, kSrc, src); };
  AddGoldenOutput(wl, kDst, dst);
  return wl;
}

}  // namespace dsa::workloads
