// Bulk memory kernels modeled on the Intel DSA offload set: MEMFILL (a
// store-only broadcast, the maximum-lane write stream), MEMCMP returning
// the first mismatch index (a count loop with a data-dependent early exit,
// so the effective trip count is computed by the loop itself), and a
// table-driven CRC-32 whose carried accumulator and indirect table load
// keep it scalar in every system — the suite's serial anchor.
#include "prog/assembler.h"
#include "vectorizer/static_vectorizer.h"
#include "workloads/common.h"
#include "workloads/streaming/streaming.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using isa::VecType;
using prog::Assembler;

namespace {

constexpr std::uint32_t kA = 0x10000;
constexpr std::uint32_t kB = 0x40000;
constexpr std::uint32_t kDst = 0x70000;
constexpr std::uint32_t kTab = 0x0C00;  // 256-entry u32 CRC table
constexpr std::uint32_t kRes = 0x0A00;  // scalar result word

constexpr int kFillByte = 0x5A;

// Standard CRC-32 (poly 0xEDB88320) lookup table, also used to compute
// the golden value so the ISA program and reference share one model.
std::vector<std::uint32_t> Crc32Table() {
  std::vector<std::uint32_t> tab(256);
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tab[i] = c;
  }
  return tab;
}

}  // namespace

sim::Workload MakeMemFill(int n) {
  sim::Workload wl;
  wl.name = "MemFill";
  wl.mem_bytes = 1 << 20;
  {
    // Store-only count loop: the DSA's detector must accept a body with no
    // load stream at all (tracker's require_store path, store side only).
    Assembler as;
    as.Movi(1, kDst);
    as.Movi(5, kFillByte);
    as.Movi(3, n);
    const auto done = as.NewLabel();
    as.Cmpi(3, 0);
    as.B(Cond::kLe, done);
    const auto loop = as.NewLabel();
    as.Bind(loop);
    as.Strb(5, 1, 1);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.Cmpi(3, 0);
    as.B(Cond::kGt, loop);
    as.Bind(done);
    as.Halt();
    wl.scalar = as.Finish();
  }
  auto build_vec = [&](int overhead) {
    // vdup + vst1 chunks with a byte tail — what memset() compiles to.
    Assembler as;
    as.Movi(1, kDst);
    as.Movi(5, kFillByte);
    as.Movi(3, n);
    as.Vdup(VecType::kI8, 8, 5);
    const auto top = as.NewLabel();
    const auto tail = as.NewLabel();
    const auto done = as.NewLabel();
    as.Bind(top);
    as.Cmpi(3, 16);
    as.B(Cond::kLt, tail);
    as.Vst1(VecType::kI8, 8, 1);
    for (int i = 0; i < overhead; ++i) as.Nop();
    as.AluImm(Opcode::kSubi, 3, 3, 16);
    as.B(Cond::kAl, top);
    as.Bind(tail);
    as.Cmpi(3, 0);
    as.B(Cond::kLe, done);
    as.Strb(5, 1, 1);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.B(Cond::kAl, tail);
    as.Bind(done);
    as.Halt();
    return as.Finish();
  };
  wl.autovec = build_vec(0);
  wl.handvec = build_vec(8);
  wl.loop_type_fractions = {{"count", 1.0}};
  wl.stream_bytes = static_cast<std::uint32_t>(n);

  std::vector<std::uint8_t> dst(n, kFillByte);
  wl.init = [](mem::Memory&) {};
  AddGoldenOutput(wl, kDst, dst);
  return wl;
}

sim::Workload MakeMemCmp(int n) {
  sim::Workload wl;
  wl.name = "MemCmp";
  wl.mem_bytes = 1 << 20;
  auto build = [&](bool guard) {
    Assembler as;
    as.Movi(0, kA);
    as.Movi(1, kB);
    as.Movi(3, n);
    as.Movi(7, 0);  // index of first mismatch (n if equal)
    if (guard) vectorizer::EmitAutoVecGuard(as, 0, 1, 9);
    const auto done = as.NewLabel();
    as.Cmpi(3, 0);
    as.B(Cond::kLe, done);
    const auto loop = as.NewLabel();
    as.Bind(loop);
    as.Ldrb(4, 0, 1);
    as.Ldrb(5, 1, 1);
    as.Cmp(4, 5);
    as.B(Cond::kNe, done);  // data-dependent early exit
    as.AluImm(Opcode::kAddi, 7, 7, 1);
    as.Cmp(7, 3);
    as.B(Cond::kLt, loop);
    as.Bind(done);
    as.Movi(1, kRes);
    as.Str(7, 1);
    as.Halt();
    return as.Finish();
  };
  // The early exit means the trip count is unknowable statically: both
  // static variants ship the scalar loop (AutoVec after its guard).
  wl.scalar = build(false);
  wl.autovec = build(true);
  wl.handvec = build(false);
  wl.loop_type_fractions = {{"dynamic-range", 1.0}};
  wl.stream_bytes = 2u * static_cast<std::uint32_t>(n);

  std::vector<std::uint8_t> a(n);
  std::uint32_t seed = 0x3C3C3C01u;
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<std::uint8_t>(1 + XorShift(seed) % 255);
  }
  std::vector<std::uint8_t> b = a;
  std::uint32_t mismatch = static_cast<std::uint32_t>(n);
  if (n >= 8) {
    mismatch = static_cast<std::uint32_t>(n - 7);
    b[mismatch] = static_cast<std::uint8_t>(a[mismatch] ^ 0x80);
  }
  wl.init = [a, b](mem::Memory& m) {
    WriteVec(m, kA, a);
    WriteVec(m, kB, b);
  };
  AddGoldenOutput(wl, kRes, std::vector<std::uint32_t>{mismatch});
  return wl;
}

sim::Workload MakeCrc32(int n) {
  sim::Workload wl;
  wl.name = "Crc32";
  wl.mem_bytes = 1 << 20;
  auto build = [&](bool guard) {
    Assembler as;
    as.Movi(0, kA);
    as.Movi(2, kTab);
    as.Movi(3, n);
    as.Movi(6, -1);   // crc = 0xFFFFFFFF
    as.Movi(10, 255);
    as.Movi(11, 8);
    as.Movi(12, 2);
    if (guard) vectorizer::EmitAutoVecGuard(as, 0, 2, 9);
    const auto fin = as.NewLabel();
    as.Cmpi(3, 0);
    as.B(Cond::kLe, fin);
    const auto loop = as.NewLabel();
    as.Bind(loop);
    as.Ldrb(4, 0, 1);
    as.Alu(Opcode::kEor, 5, 6, 4);   // crc ^ byte
    as.Alu(Opcode::kAnd, 5, 5, 10);  // & 0xFF
    as.Alu(Opcode::kLsl, 5, 5, 12);  // *4
    as.Alu(Opcode::kAdd, 5, 5, 2);   // &tab[idx] — indirect addressing
    as.Ldr(5, 5);
    as.Alu(Opcode::kLsr, 6, 6, 11);  // crc >> 8 (logical)
    as.Alu(Opcode::kEor, 6, 6, 5);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.Cmpi(3, 0);
    as.B(Cond::kGt, loop);
    as.Bind(fin);
    as.Movi(7, -1);
    as.Alu(Opcode::kEor, 6, 6, 7);   // final xor
    as.Movi(1, kRes);
    as.Str(6, 1);
    as.Halt();
    return as.Finish();
  };
  wl.scalar = build(false);
  wl.autovec = build(true);
  wl.handvec = build(false);
  wl.loop_type_fractions = {{"non-vectorizable", 1.0}};
  wl.stream_bytes = static_cast<std::uint32_t>(n);

  const std::vector<std::uint32_t> tab = Crc32Table();
  std::vector<std::uint8_t> src(n);
  std::uint32_t seed = 0xC2C32017u;
  for (int i = 0; i < n; ++i) src[i] = static_cast<std::uint8_t>(XorShift(seed));
  std::uint32_t crc = 0xFFFFFFFFu;
  for (int i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ tab[(crc ^ src[i]) & 0xFF];
  }
  crc ^= 0xFFFFFFFFu;
  wl.init = [src, tab](mem::Memory& m) {
    WriteVec(m, kTab, tab);
    WriteVec(m, kA, src);
  };
  AddGoldenOutput(wl, kRes, std::vector<std::uint32_t>{crc});
  return wl;
}

std::vector<sim::Workload> StreamingSet() {
  std::vector<sim::Workload> v;
  v.push_back(MakeWsScan());
  v.push_back(MakeHtmlScan());
  v.push_back(MakeCharClassLut());
  v.push_back(MakeMemFill());
  v.push_back(MakeMemCmp());
  v.push_back(MakeCrc32());
  return v;
}

}  // namespace dsa::workloads
