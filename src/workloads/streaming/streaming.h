// Streaming workload suite: byte-classification scanning in the style of
// SIMD HTML/whitespace scanners and Intel-DSA-style bulk memory kernels
// over large buffers. Every kernel is sentinel-heavy, conditional or
// deliberately non-vectorizable — the loop classes static compilers fail
// on and the DSA's differentiator — and every kernel declares golden
// output digests (AddGoldenOutput) plus `stream_bytes` so bench_stream
// can report GB/s next to the paper's speedup/energy columns.
#pragma once

#include <vector>

#include "sim/workload.h"

namespace dsa::workloads {

// Whitespace scan over an HTML-like byte stream: pass 1 classifies each
// byte (c <= 32 ? 1 : 0) through a data-dependent if/else — the
// conditional loop the DSA maps and AutoVec refuses — and pass 2 reduces
// the bitmap into a count word (carry-around scalar, everyone's scalar).
[[nodiscard]] sim::Workload MakeWsScan(int n = 65536);

// HTML token scan: marks '<' tag openers (c == '<' ? 1 : 0) the same
// two-pass way; the equality test maps to a vceq/vbsl blend.
[[nodiscard]] sim::Workload MakeHtmlScan(int n = 65536);

// Byte classification through a 256-entry lookup table in memory —
// cls[i] = lut[in[i]] — the classic simd_charclass shape. The LUT load is
// indirect addressing, so every static and dynamic vectorizer must
// reject it (Table 1 lines 6/7); the suite's negative control.
[[nodiscard]] sim::Workload MakeCharClassLut(int n = 65536);

// Byte memfill (DSA-offload style MEMFILL): a store-only count loop
// broadcasting one value, the maximum-lane write stream.
[[nodiscard]] sim::Workload MakeMemFill(int n = 65536);

// Byte memcmp returning the index of the first mismatch: a count loop
// with a data-dependent early exit, so the trip count is computed by the
// loop itself — the dynamic-range-B shape no static vectorizer can size.
[[nodiscard]] sim::Workload MakeMemCmp(int n = 65536);

// Table-driven CRC-32 over a buffer: an indirect table load feeding a
// carried accumulator — sequential by construction, scalar everywhere.
[[nodiscard]] sim::Workload MakeCrc32(int n = 65536);

// The streaming suite (the six kernels above at their default sizes).
// bench_stream additionally pulls in MemCopy and StrCopy from the
// existing sets to complete the memcpy/sentinel coverage.
[[nodiscard]] std::vector<sim::Workload> StreamingSet();

}  // namespace dsa::workloads
