// Byte-classification scanners in the style of SIMD HTML parsing: a
// classify pass (data-dependent if/else over every byte — the conditional
// loop of Table 1 line 12) followed by a reduction pass accumulating the
// bitmap into a count (carry-around scalar, scalar in every variant), plus
// a 256-entry lookup-table classifier whose indirect load no vectorizer —
// static or dynamic — may touch (Table 1 lines 6/7).
#include "prog/assembler.h"
#include "vectorizer/static_vectorizer.h"
#include "workloads/common.h"
#include "workloads/streaming/streaming.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using isa::VecType;
using prog::Assembler;

namespace {

constexpr std::uint32_t kIn = 0x10000;
constexpr std::uint32_t kOut = 0x40000;
constexpr std::uint32_t kLut = 0x0E00;  // 256-entry class table
constexpr std::uint32_t kCnt = 0x0F00;  // reduction result word

// The two scan predicates the suite ships: whitespace (c <= 32) and HTML
// tag opener (c == '<').
enum class Pred { kLeThreshold, kEqValue };

// Classify pass, scalar if/else form: out[i] = pred(in[i]) ? 1 : 0 with a
// store in each arm — the same shape as Susan's pass 2, which AutoVec
// refuses and the DSA if-converts.
void EmitScalarClassify(Assembler& as, int n, Pred pred, int value) {
  as.Movi(0, kIn);
  as.Movi(1, kOut);
  as.Movi(10, value);
  as.Movi(11, 1);
  as.Movi(12, 0);
  as.Movi(3, n);
  const auto done = as.NewLabel();
  as.Cmpi(3, 0);
  as.B(Cond::kLe, done);  // empty-buffer guard
  const auto loop = as.NewLabel();
  const auto miss = as.NewLabel();
  const auto next = as.NewLabel();
  as.Bind(loop);
  as.Ldrb(4, 0, 1);
  as.Cmp(4, 10);
  as.B(pred == Pred::kLeThreshold ? Cond::kGt : Cond::kNe, miss);
  as.Strb(11, 1, 1);  // hit
  as.B(Cond::kAl, next);
  as.Bind(miss);
  as.Strb(12, 1, 1);
  as.Bind(next);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Bind(done);
}

// Classify pass, hand-vectorized: vcge/vceq mask + vbsl blend of 1/0,
// 16 bytes per chunk. Inputs are kept in 9..126 so signed i8 lane
// compares agree with the unsigned byte semantics.
void EmitHandVecClassify(Assembler& as, int n, Pred pred, int value,
                         int overhead) {
  as.Movi(0, kIn);
  as.Movi(1, kOut);
  as.Movi(10, value);
  as.Movi(11, 1);
  as.Movi(12, 0);
  as.Movi(3, n);
  as.Vdup(VecType::kI8, 10, 10);
  as.Vdup(VecType::kI8, 11, 11);
  as.Vdup(VecType::kI8, 12, 12);
  vectorizer::ElementwiseLoopSpec spec;
  spec.type = VecType::kI8;
  spec.load_regs = {0};
  spec.store_regs = {1};
  spec.count_reg = 3;
  spec.per_chunk_overhead_instrs = overhead;
  spec.vector_ops = [pred](Assembler& a) {
    if (pred == Pred::kLeThreshold) {
      a.Vop(Opcode::kVcge, VecType::kI8, 8, 10, 1);  // mask = value >= c
    } else {
      a.Vop(Opcode::kVceq, VecType::kI8, 8, 1, 10);  // mask = c == value
    }
    a.Vbsl(8, 11, 12);  // 1 where mask else 0
  };
  spec.scalar_ops = [pred](Assembler& a) {
    const auto hit_l = a.NewLabel();
    const auto done_l = a.NewLabel();
    a.Cmp(4, 10);
    a.B(pred == Pred::kLeThreshold ? Cond::kLe : Cond::kEq, hit_l);
    a.Mov(8, 12);
    a.B(Cond::kAl, done_l);
    a.Bind(hit_l);
    a.Mov(8, 11);
    a.Bind(done_l);
  };
  vectorizer::EmitElementwiseLoop(as, spec);
}

// Reduction pass: cnt = sum(out[0..n)). The accumulator is a carry-around
// scalar (Table 1 line 10), so every variant keeps it scalar.
void EmitScalarReduce(Assembler& as, int n) {
  as.Movi(0, kOut);
  as.Movi(6, 0);
  as.Movi(3, n);
  const auto done = as.NewLabel();
  as.Cmpi(3, 0);
  as.B(Cond::kLe, done);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldrb(4, 0, 1);
  as.Alu(Opcode::kAdd, 6, 6, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Bind(done);
  as.Movi(1, kCnt);
  as.Str(6, 1);
}

// Assembles the three binary variants of a scan workload and computes the
// golden bitmap + count from the same predicate.
sim::Workload MakeScan(const char* name, int n, Pred pred, int value,
                       std::vector<std::uint8_t> src) {
  sim::Workload wl;
  wl.name = name;
  wl.mem_bytes = 1 << 20;
  {
    Assembler as;
    EmitScalarClassify(as, n, pred, value);
    EmitScalarReduce(as, n);
    as.Halt();
    wl.scalar = as.Finish();
  }
  {
    // AutoVec rejects the if/else classify (guard + scalar) and the
    // carried-sum reduce.
    Assembler as;
    vectorizer::EmitAutoVecGuard(as, 0, 1, 6);
    EmitScalarClassify(as, n, pred, value);
    EmitScalarReduce(as, n);
    as.Halt();
    wl.autovec = as.Finish();
  }
  {
    Assembler as;
    EmitHandVecClassify(as, n, pred, value, /*overhead=*/8);
    EmitScalarReduce(as, n);
    as.Halt();
    wl.handvec = as.Finish();
  }
  wl.loop_type_fractions = {{"conditional", 0.5}, {"count", 0.5}};
  wl.stream_bytes = 3u * static_cast<std::uint32_t>(n);  // read+write+reread

  std::vector<std::uint8_t> cls(n);
  std::uint32_t cnt = 0;
  for (int i = 0; i < n; ++i) {
    const bool hit = pred == Pred::kLeThreshold
                         ? src[i] <= static_cast<std::uint8_t>(value)
                         : src[i] == static_cast<std::uint8_t>(value);
    cls[i] = hit ? 1 : 0;
    cnt += cls[i];
  }
  wl.init = [src](mem::Memory& m) { WriteVec(m, kIn, src); };
  AddGoldenOutput(wl, kOut, cls);
  AddGoldenOutput(wl, kCnt, std::vector<std::uint32_t>{cnt});
  return wl;
}

// HTML-ish byte stream: printable ASCII with tags sprinkled in. Every
// byte stays in 9..126 so i8 lane compares match unsigned semantics.
std::vector<std::uint8_t> MakeHtmlBytes(int n, std::uint32_t seed) {
  std::vector<std::uint8_t> src(n);
  for (int i = 0; i < n; ++i) {
    const std::uint32_t r = XorShift(seed);
    if (r % 16 == 0) {
      src[i] = '<';
    } else if (r % 16 == 1) {
      src[i] = '>';
    } else if (r % 8 == 1) {
      src[i] = ' ';
    } else if (r % 32 == 2) {
      src[i] = '\n';
    } else {
      src[i] = static_cast<std::uint8_t>(33 + r % 94);  // 33..126
    }
  }
  return src;
}

}  // namespace

sim::Workload MakeWsScan(int n) {
  return MakeScan("WsScan", n, Pred::kLeThreshold, 32,
                  MakeHtmlBytes(n, 0x57AB1E5Du));
}

sim::Workload MakeHtmlScan(int n) {
  return MakeScan("HtmlScan", n, Pred::kEqValue, '<',
                  MakeHtmlBytes(n, 0x173B00B5u));
}

sim::Workload MakeCharClassLut(int n) {
  sim::Workload wl;
  wl.name = "CharClassLut";
  wl.mem_bytes = 1 << 20;
  auto build = [&](bool guard) {
    Assembler as;
    as.Movi(0, kIn);
    as.Movi(1, kOut);
    as.Movi(2, kLut);
    as.Movi(3, n);
    if (guard) vectorizer::EmitAutoVecGuard(as, 0, 1, 9);
    const auto done = as.NewLabel();
    as.Cmpi(3, 0);
    as.B(Cond::kLe, done);
    const auto loop = as.NewLabel();
    as.Bind(loop);
    as.Ldrb(4, 0, 1);              // c = *in++
    as.Alu(Opcode::kAdd, 5, 2, 4);  // &lut[c] — indirect addressing
    as.Ldrb(6, 5);
    as.Strb(6, 1, 1);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.Cmpi(3, 0);
    as.B(Cond::kGt, loop);
    as.Bind(done);
    as.Halt();
    return as.Finish();
  };
  wl.scalar = build(false);
  wl.autovec = build(true);
  wl.handvec = build(false);
  wl.loop_type_fractions = {{"non-vectorizable", 1.0}};
  wl.stream_bytes = 3u * static_cast<std::uint32_t>(n);

  // Class table: 0 other, 1 alpha, 2 digit, 3 whitespace.
  std::vector<std::uint8_t> lut(256, 0);
  for (int c = 'a'; c <= 'z'; ++c) lut[c] = 1;
  for (int c = 'A'; c <= 'Z'; ++c) lut[c] = 1;
  for (int c = '0'; c <= '9'; ++c) lut[c] = 2;
  for (int c : {' ', '\t', '\n', '\r'}) lut[c] = 3;

  std::vector<std::uint8_t> src = MakeHtmlBytes(n, 0xC1A55E57u);
  std::vector<std::uint8_t> cls(n);
  for (int i = 0; i < n; ++i) cls[i] = lut[src[i]];
  wl.init = [src, lut](mem::Memory& m) {
    WriteVec(m, kLut, lut);
    WriteVec(m, kIn, src);
  };
  AddGoldenOutput(wl, kOut, cls);
  return wl;
}

}  // namespace dsa::workloads
