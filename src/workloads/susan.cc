// Susan edges, reduced to its two characteristic passes over 16-bit data:
//   pass 1 (count loop):        diff[i] = |img[i] - blur[i]|
//   pass 2 (conditional loop):  out[i] = diff[i] > t ? 255 : 0
// Pass 2 is the if/else loop static vectorizers struggle with (Table 1
// line 12); the DSA maps and speculates it (Section 4.6.4), and the
// hand-coded variant blends both arms with a mask.
#include "prog/assembler.h"
#include "vectorizer/static_vectorizer.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using isa::VecType;
using prog::Assembler;

namespace {

constexpr std::uint32_t kImg = 0x10000;
constexpr std::uint32_t kBlur = 0x30000;
constexpr std::uint32_t kDiff = 0x50000;
constexpr std::uint32_t kOut = 0x70000;

void EmitScalarPass1(Assembler& as, int n) {
  as.Movi(0, kImg);
  as.Movi(1, kBlur);
  as.Movi(2, kDiff);
  as.Movi(3, n);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldrh(4, 0, 2);
  as.Ldrh(5, 1, 2);
  as.Alu(Opcode::kMax, 6, 4, 5);
  as.Alu(Opcode::kMin, 7, 4, 5);
  as.Alu(Opcode::kSub, 6, 6, 7);
  as.Strh(6, 2, 2);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
}

void EmitScalarPass2(Assembler& as, int n, int threshold) {
  as.Movi(0, kDiff);
  as.Movi(1, kOut);
  as.Movi(10, threshold);
  as.Movi(11, 255);
  as.Movi(12, 0);
  as.Movi(3, n);
  const auto loop = as.NewLabel();
  const auto not_edge = as.NewLabel();
  const auto next = as.NewLabel();
  as.Bind(loop);
  as.Ldrh(4, 0, 2);
  as.Cmp(4, 10);
  as.B(Cond::kLe, not_edge);
  as.Strh(11, 1, 2);  // edge
  as.B(Cond::kAl, next);
  as.Bind(not_edge);
  as.Strh(12, 1, 2);  // background
  as.Bind(next);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
}

prog::Program BuildScalar(int n, int threshold) {
  Assembler as;
  EmitScalarPass1(as, n);
  EmitScalarPass2(as, n, threshold);
  as.Halt();
  return as.Finish();
}

void EmitVectorPass1(Assembler& as, int n, int overhead) {
  as.Movi(0, kImg);
  as.Movi(1, kBlur);
  as.Movi(2, kDiff);
  as.Movi(3, n);
  vectorizer::ElementwiseLoopSpec spec;
  spec.type = VecType::kI16;
  spec.load_regs = {0, 1};
  spec.store_regs = {2};
  spec.count_reg = 3;
  spec.per_chunk_overhead_instrs = overhead;
  spec.vector_ops = [](Assembler& a) {
    a.Vop(Opcode::kVmax, VecType::kI16, 8, 1, 2);
    a.Vop(Opcode::kVmin, VecType::kI16, 9, 1, 2);
    a.Vop(Opcode::kVsub, VecType::kI16, 8, 8, 9);
  };
  spec.scalar_ops = [](Assembler& a) {
    a.Alu(Opcode::kMax, 8, 4, 5);
    a.Alu(Opcode::kMin, 7, 4, 5);
    a.Alu(Opcode::kSub, 8, 8, 7);
  };
  vectorizer::EmitElementwiseLoop(as, spec);
}

// Hand-coded masked thresholding: computes the mask with vcgt and blends
// 255/0 with vbsl — what an ARM-library expert writes for pass 2.
void EmitHandVectorPass2(Assembler& as, int n, int threshold, int overhead) {
  as.Movi(0, kDiff);
  as.Movi(1, kOut);
  as.Movi(10, threshold);
  as.Movi(11, 255);
  as.Movi(12, 0);
  as.Movi(3, n);
  as.Vdup(VecType::kI16, 10, 10);
  as.Vdup(VecType::kI16, 11, 11);
  as.Vdup(VecType::kI16, 12, 12);
  vectorizer::ElementwiseLoopSpec spec;
  spec.type = VecType::kI16;
  spec.load_regs = {0};
  spec.store_regs = {1};
  spec.count_reg = 3;
  spec.per_chunk_overhead_instrs = overhead;
  spec.vector_ops = [](Assembler& a) {
    a.Vop(Opcode::kVcgt, VecType::kI16, 8, 1, 10);  // mask = diff > t
    a.Vbsl(8, 11, 12);                              // 255 where mask else 0
  };
  spec.scalar_ops = [](Assembler& a) {
    // branchless scalar tail: (diff > t) ? 255 : 0 via min/max trickery
    const auto then_l = a.NewLabel();
    const auto done_l = a.NewLabel();
    a.Cmp(4, 10);
    a.B(Cond::kGt, then_l);
    a.Mov(8, 12);
    a.B(Cond::kAl, done_l);
    a.Bind(then_l);
    a.Mov(8, 11);
    a.Bind(done_l);
  };
  vectorizer::EmitElementwiseLoop(as, spec);
}

prog::Program BuildAutoVec(int n, int threshold) {
  // The compiler vectorizes pass 1 but leaves the if/else of pass 2 scalar,
  // after emitting its failed-vectorization guard sequence.
  Assembler as;
  EmitVectorPass1(as, n, /*overhead=*/0);
  vectorizer::EmitAutoVecGuard(as, 0, 1, 6);
  EmitScalarPass2(as, n, threshold);
  as.Halt();
  return as.Finish();
}

prog::Program BuildHandVec(int n, int threshold) {
  Assembler as;
  EmitVectorPass1(as, n, /*overhead=*/8);
  EmitHandVectorPass2(as, n, threshold, /*overhead=*/8);
  as.Halt();
  return as.Finish();
}

}  // namespace

sim::Workload MakeSusanE(int n, int threshold) {
  sim::Workload wl;
  wl.name = "Susan E";
  wl.mem_bytes = 1 << 20;
  wl.scalar = BuildScalar(n, threshold);
  wl.autovec = BuildAutoVec(n, threshold);
  wl.handvec = BuildHandVec(n, threshold);
  wl.loop_type_fractions = {{"count", 0.5}, {"conditional", 0.5}};

  std::vector<std::uint16_t> img(n);
  std::vector<std::uint16_t> blur(n);
  std::vector<std::uint16_t> diff(n);
  std::vector<std::uint16_t> out(n);
  std::uint32_t seed = 0x5A5A1234u;
  for (int i = 0; i < n; ++i) {
    img[i] = static_cast<std::uint16_t>(XorShift(seed) % 256);
    blur[i] = static_cast<std::uint16_t>(XorShift(seed) % 256);
    diff[i] = static_cast<std::uint16_t>(
        img[i] > blur[i] ? img[i] - blur[i] : blur[i] - img[i]);
    out[i] = diff[i] > threshold ? 255 : 0;
  }
  wl.init = [img, blur](mem::Memory& m) {
    WriteVec(m, kImg, img);
    WriteVec(m, kBlur, blur);
  };
  AddGoldenOutput(wl, kDiff, diff);
  AddGoldenOutput(wl, kOut, out);
  return wl;
}

}  // namespace dsa::workloads
