// Row-wise [1 2 1]/4 smoothing over a 16-bit image: the horizontal pass of
// a separable Gaussian (OpenCV's blur reduced to one dimension per row).
// The inner loop is a vectorizable count loop; the row loop is an outer
// loop, exercising the nest handling of every system.
#include <functional>

#include "prog/assembler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using isa::VecType;
using prog::Assembler;

namespace {

constexpr std::uint32_t kIn = 0x10000;
constexpr std::uint32_t kOut = 0x60000;

// Shared row-loop scaffold: `inner` gets r0 = &in[y][0], r1 = &out[y][0],
// r3 = width-2 and must consume them.
prog::Program Build(int width, int height,
                    const std::function<void(Assembler&)>& inner) {
  Assembler as;
  as.Movi(10, 0);       // y
  as.Movi(8, 2);        // shift amount for >>2 and *4
  const auto ly = as.NewLabel();
  as.Bind(ly);
  as.Movi(12, width * 2);
  as.Alu(Opcode::kMul, 0, 10, 12);
  as.AluImm(Opcode::kAddi, 1, 0, kOut);
  as.AluImm(Opcode::kAddi, 0, 0, kIn);
  as.Movi(3, width - 2);
  inner(as);
  as.AluImm(Opcode::kAddi, 10, 10, 1);
  as.Cmpi(10, height);
  as.B(Cond::kLt, ly);
  as.Halt();
  return as.Finish();
}

prog::Program BuildScalar(int width, int height) {
  return Build(width, height, [](Assembler& as) {
    const auto lx = as.NewLabel();
    as.Bind(lx);
    as.Ldrh(4, 0, 0, 0);  // in[x]
    as.Ldrh(5, 0, 0, 2);  // in[x+1]
    as.Ldrh(6, 0, 0, 4);  // in[x+2]
    as.Alu(Opcode::kAdd, 4, 4, 5);
    as.Alu(Opcode::kAdd, 4, 4, 5);  // + in[x+1] twice = 2*center
    as.Alu(Opcode::kAdd, 4, 4, 6);
    as.Alu(Opcode::kLsr, 4, 4, 8);
    as.Strh(4, 1, 2);
    as.AluImm(Opcode::kAddi, 0, 0, 2);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.Cmpi(3, 0);
    as.B(Cond::kGt, lx);
  });
}

prog::Program BuildVectorized(int width, int height, int per_chunk_overhead) {
  return Build(width, height, [per_chunk_overhead](Assembler& as) {
    // Three shifted stream pointers for the taps.
    as.AluImm(Opcode::kAddi, 5, 0, 2);
    as.AluImm(Opcode::kAddi, 6, 0, 4);
    const auto top = as.NewLabel();
    const auto tail = as.NewLabel();
    const auto done = as.NewLabel();
    as.Bind(top);
    as.Cmpi(3, 8);
    as.B(Cond::kLt, tail);
    as.Vld1(VecType::kI16, 1, 0);
    as.Vld1(VecType::kI16, 2, 5);
    as.Vld1(VecType::kI16, 3, 6);
    as.Vop(Opcode::kVadd, VecType::kI16, 8, 1, 2);
    as.Vop(Opcode::kVadd, VecType::kI16, 8, 8, 2);
    as.Vop(Opcode::kVadd, VecType::kI16, 8, 8, 3);
    as.VShift(Opcode::kVshr, VecType::kI16, 8, 8, 2);
    as.Vst1(VecType::kI16, 8, 1);
    for (int i = 0; i < per_chunk_overhead; ++i) as.Nop();
    as.AluImm(Opcode::kSubi, 3, 3, 8);
    as.B(Cond::kAl, top);
    as.Bind(tail);
    as.Cmpi(3, 0);
    as.B(Cond::kLe, done);
    as.Ldrh(4, 0, 2, 0);
    as.Ldrh(9, 5, 2, 0);
    as.Ldrh(11, 6, 2, 0);
    as.Alu(Opcode::kAdd, 4, 4, 9);
    as.Alu(Opcode::kAdd, 4, 4, 9);
    as.Alu(Opcode::kAdd, 4, 4, 11);
    as.Alu(Opcode::kLsr, 4, 4, 8);
    as.Strh(4, 1, 2);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.B(Cond::kAl, tail);
    as.Bind(done);
  });
}

}  // namespace

sim::Workload MakeGaussian(int width, int height) {
  sim::Workload wl;
  wl.name = "Gaussian";
  wl.mem_bytes = 1 << 20;
  wl.scalar = BuildScalar(width, height);
  wl.autovec = BuildVectorized(width, height, 0);
  wl.handvec = BuildVectorized(width, height, 8);
  wl.loop_type_fractions = {{"count", 0.5}, {"outer", 0.5}};

  const int n = width * height;
  std::vector<std::uint16_t> in(n);
  std::vector<std::uint16_t> out(n, 0);
  std::uint32_t seed = 0xBADCAFE5u;
  for (int i = 0; i < n; ++i) {
    in[i] = static_cast<std::uint16_t>(XorShift(seed) % 256);
  }
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width - 2; ++x) {
      const int i = y * width + x;
      out[i] = static_cast<std::uint16_t>(
          (in[i] + 2 * in[i + 1] + in[i + 2]) >> 2);
    }
  }
  wl.init = [in](mem::Memory& m) { WriteVec(m, kIn, in); };
  AddGoldenOutput(wl, kOut, out);
  return wl;
}

}  // namespace dsa::workloads
