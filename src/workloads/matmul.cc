// dim x dim int32 matrix multiply, i-k-j loop order: the innermost j-loop
// streams one row of B into one row of C with a broadcast multiplier, the
// classic SIMD-friendly formulation (MiBench MM). The i/k loops are outer
// loops; the DSA handles the nest through repeated inner-loop cache hits.
#include <functional>

#include "prog/assembler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using isa::VecType;
using prog::Assembler;

namespace {

constexpr std::uint32_t kA = 0x10000;  // dim*dim*4 bytes each
constexpr std::uint32_t kB = 0x50000;
constexpr std::uint32_t kC = 0x90000;

// Emits the i/k control structure shared by all variants; `inner` emits the
// j-loop given: r6 = &B[k][0], r7 = &C[i][0], r4 = A[i][k], r3 = dim.
prog::Program Build(int dim, const std::function<void(Assembler&)>& inner) {
  Assembler as;
  as.Movi(10, 0);  // i
  const auto li = as.NewLabel();
  as.Bind(li);
  as.Movi(11, 0);  // k
  const auto lk = as.NewLabel();
  as.Bind(lk);
  // r4 = A[i*dim + k]
  as.Movi(12, dim);
  as.Alu(Opcode::kMul, 5, 10, 12);
  as.Alu(Opcode::kAdd, 5, 5, 11);
  as.Movi(12, 2);
  as.Alu(Opcode::kLsl, 5, 5, 12);  // *4
  as.AluImm(Opcode::kAddi, 5, 5, kA);
  as.Ldr(4, 5);
  // r6 = &B[k*dim], r7 = &C[i*dim]
  as.Movi(12, dim);
  as.Alu(Opcode::kMul, 6, 11, 12);
  as.Movi(12, 2);
  as.Alu(Opcode::kLsl, 6, 6, 12);
  as.AluImm(Opcode::kAddi, 6, 6, kB);
  as.Movi(12, dim);
  as.Alu(Opcode::kMul, 7, 10, 12);
  as.Movi(12, 2);
  as.Alu(Opcode::kLsl, 7, 7, 12);
  as.AluImm(Opcode::kAddi, 7, 7, kC);
  as.Movi(3, dim);  // j count
  inner(as);
  // k++
  as.AluImm(Opcode::kAddi, 11, 11, 1);
  as.Cmpi(11, dim);
  as.B(Cond::kLt, lk);
  // i++
  as.AluImm(Opcode::kAddi, 10, 10, 1);
  as.Cmpi(10, dim);
  as.B(Cond::kLt, li);
  as.Halt();
  return as.Finish();
}

prog::Program BuildScalar(int dim) {
  return Build(dim, [](Assembler& as) {
    const auto lj = as.NewLabel();
    as.Bind(lj);
    as.Ldr(8, 6, 4);     // b = B[k][j]
    as.Ldr(9, 7);        // c = C[i][j] (no writeback; the store advances r7)
    as.Mla(9, 8, 4, 9);  // c += b * a_ik
    as.Str(9, 7, 4);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.Cmpi(3, 0);
    as.B(Cond::kGt, lj);
  });
}

prog::Program BuildVectorized(int dim, int per_chunk_overhead) {
  return Build(dim, [per_chunk_overhead](Assembler& as) {
    as.Vdup(VecType::kI32, 7, 4);  // q7 = a_ik
    const auto top = as.NewLabel();
    const auto tail = as.NewLabel();
    const auto done = as.NewLabel();
    as.Bind(top);
    as.Cmpi(3, 4);
    as.B(Cond::kLt, tail);
    as.Vld1(VecType::kI32, 1, 6);                   // B row, advance
    as.Vld1(VecType::kI32, 2, 7, /*writeback=*/false);  // C row
    as.Vop(Opcode::kVmul, VecType::kI32, 8, 1, 7);
    as.Vop(Opcode::kVadd, VecType::kI32, 8, 8, 2);
    as.Vst1(VecType::kI32, 8, 7);                   // C row, advance
    for (int i = 0; i < per_chunk_overhead; ++i) as.Nop();
    as.AluImm(Opcode::kSubi, 3, 3, 4);
    as.B(Cond::kAl, top);
    as.Bind(tail);
    as.Cmpi(3, 0);
    as.B(Cond::kLe, done);
    as.Ldr(8, 6, 4);
    as.Ldr(9, 7);
    as.Mla(9, 8, 4, 9);
    as.Str(9, 7, 4);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.B(Cond::kAl, tail);
    as.Bind(done);
  });
}

}  // namespace

sim::Workload MakeMatMul(int dim) {
  sim::Workload wl;
  wl.name = "MM " + std::to_string(dim) + "x" + std::to_string(dim);
  wl.mem_bytes = 1 << 20;
  wl.scalar = BuildScalar(dim);
  wl.autovec = BuildVectorized(dim, 0);
  wl.handvec = BuildVectorized(dim, 8);
  wl.loop_type_fractions = {{"count", 0.6}, {"outer", 0.4}};

  const int n = dim * dim;
  std::vector<std::int32_t> a(n);
  std::vector<std::int32_t> b(n);
  std::vector<std::int32_t> c(n, 0);
  std::uint32_t seed = 0xABCD1234u;
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<std::int32_t>(XorShift(seed) % 64);
    b[i] = static_cast<std::int32_t>(XorShift(seed) % 64);
  }
  for (int i = 0; i < dim; ++i) {
    for (int k = 0; k < dim; ++k) {
      const std::int32_t aik = a[i * dim + k];
      for (int j = 0; j < dim; ++j) {
        c[i * dim + j] += aik * b[k * dim + j];
      }
    }
  }
  wl.init = [a, b](mem::Memory& m) {
    WriteVec(m, kA, a);
    WriteVec(m, kB, b);
  };
  AddGoldenOutput(wl, kC, c);
  return wl;
}

}  // namespace dsa::workloads
