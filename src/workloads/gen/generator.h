// Seeded loop-nest generator: given (seed, loop class) it emits a
// randomized mini-ISA program exercising exactly one tracker state-machine
// path, an exact C++ scalar reference model of the same computation, and
// the golden outputs / digest regions derived from that model. Determinism
// is a contract: the same (seed, class) pair produces a byte-identical
// program (compare Program::Disassemble()) and golden digest, which is
// what makes the 64/200/500-seed differential sweeps reproducible from a
// single `--gen-seed` value.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/workload.h"

namespace dsa::workloads::gen {

// One grammar class per tracker path (src/engine/tracker.h): the straight
// count-loop path, the data-dependent-latch (sentinel) path, the Mapping
// stage (conditional) path, the nest-fusion path, the kNonUnitStride
// reject path, and the mid-body loop-exit (early abort) path.
enum class LoopClass : std::uint8_t {
  kCounted,
  kSentinel,
  kConditional,
  kNested,
  kStrideVariant,
  kEarlyExit,
};
inline constexpr int kNumLoopClasses = 6;

// Slug used in workload names ("gen-<slug>-s<seed>"), GenInfo::loop_class
// and the bench JSON `gen.class` field.
[[nodiscard]] std::string_view ToString(LoopClass c);

// Emits the generated workload for (seed, class). All three binary
// variants carry the same scalar program: generated programs measure the
// DSA against its own scalar baseline, not against static vectorizers.
[[nodiscard]] sim::Workload MakeGenerated(std::uint64_t seed, LoopClass cls);

// `count` programs starting at `base_seed`, classes round-robin — the
// population the differential-fuzz sweeps and bench_stream iterate.
[[nodiscard]] std::vector<sim::Workload> GeneratedSet(std::uint64_t base_seed,
                                                      int count);

}  // namespace dsa::workloads::gen
