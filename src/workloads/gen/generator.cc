// Seeded loop-nest generator. Every class builder draws its shape — element
// width, op-chain, trip count, thresholds — from a splitmix64 stream keyed
// by (seed, class), emits the assembly, and replays the identical
// computation in C++ (mirroring src/cpu/cpu.cc semantics exactly: uint32
// wraparound, signed min/max, shift-by-(reg&31), zero-extending narrow
// loads, truncating narrow stores) to produce the golden outputs.
#include "workloads/gen/generator.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "prog/assembler.h"
#include "workloads/common.h"

namespace dsa::workloads::gen {

using isa::Cond;
using isa::Opcode;
using prog::Assembler;

namespace {

constexpr std::uint32_t kSrc = 0x10000;
constexpr std::uint32_t kDst = 0x30000;

// splitmix64: tiny, high-quality, and stable across platforms — the whole
// determinism contract rests on this stream.
struct Rng {
  std::uint64_t s;
  std::uint64_t Next() {
    s += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  // Uniform in [lo, hi] (closed; the span is computed in 64 bits so
  // Range(0, 0xFFFFFFFF) doesn't wrap to a zero modulus).
  std::uint32_t Range(std::uint32_t lo, std::uint32_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
    return lo + static_cast<std::uint32_t>(Next() % span);
  }
};

// Element width of the generated streams, with its load/store opcodes.
struct Elem {
  int bytes = 4;
  Opcode load = Opcode::kLdr;
  Opcode store = Opcode::kStr;
};

Elem PickElem(Rng& rng) {
  switch (rng.Range(0, 2)) {
    case 0: return {1, Opcode::kLdrb, Opcode::kStrb};
    case 1: return {2, Opcode::kLdrh, Opcode::kStrh};
    default: return {4, Opcode::kLdr, Opcode::kStr};
  }
}

// One link of the transform chain: result = op(result, konst), the konst
// living in a dedicated loop-invariant register.
struct ChainOp {
  Opcode op = Opcode::kAdd;
  std::uint32_t konst = 1;
  int konst_reg = 10;
};

// The op pool the DSA's SIMD generator can map (the same pool
// tests/test_property_random.cc draws from).
ChainOp PickOp(Rng& rng, int konst_reg) {
  static constexpr Opcode kPool[] = {
      Opcode::kAdd, Opcode::kSub, Opcode::kAnd, Opcode::kOrr, Opcode::kEor,
      Opcode::kMul, Opcode::kMin, Opcode::kMax, Opcode::kLsr,
  };
  ChainOp c;
  c.op = kPool[rng.Range(0, 8)];
  c.konst_reg = konst_reg;
  switch (c.op) {
    case Opcode::kLsr: c.konst = rng.Range(1, 7); break;
    case Opcode::kMul: c.konst = rng.Range(3, 9); break;
    case Opcode::kAnd: c.konst = rng.Range(0x0F, 0xFF); break;
    default: c.konst = rng.Range(1, 100); break;
  }
  return c;
}

std::vector<ChainOp> PickChain(Rng& rng, int len, int first_konst_reg) {
  std::vector<ChainOp> chain;
  for (int i = 0; i < len; ++i) chain.push_back(PickOp(rng, first_konst_reg + i));
  return chain;
}

// C++ mirror of one scalar ALU op, bit-exact with src/cpu/cpu.cc.
std::uint32_t EvalOp(Opcode op, std::uint32_t a, std::uint32_t b) {
  switch (op) {
    case Opcode::kAdd: return a + b;
    case Opcode::kSub: return a - b;
    case Opcode::kAnd: return a & b;
    case Opcode::kOrr: return a | b;
    case Opcode::kEor: return a ^ b;
    case Opcode::kMul: return a * b;
    case Opcode::kLsr: return a >> (b & 31);
    case Opcode::kLsl: return a << (b & 31);
    case Opcode::kMin:
      return static_cast<std::uint32_t>(
          std::min(static_cast<std::int32_t>(a), static_cast<std::int32_t>(b)));
    case Opcode::kMax:
      return static_cast<std::uint32_t>(
          std::max(static_cast<std::int32_t>(a), static_cast<std::int32_t>(b)));
    default: assert(false); return a;
  }
}

std::uint32_t EvalChain(const std::vector<ChainOp>& chain, std::uint32_t v) {
  for (const ChainOp& c : chain) v = EvalOp(c.op, v, c.konst);
  return v;
}

std::uint32_t Truncate(std::uint32_t v, int bytes) {
  if (bytes == 1) return v & 0xFFu;
  if (bytes == 2) return v & 0xFFFFu;
  return v;
}

void EmitChainConsts(Assembler& as, const std::vector<ChainOp>& chain) {
  for (const ChainOp& c : chain) {
    as.Movi(c.konst_reg, static_cast<std::int32_t>(c.konst));
  }
}

// result reg r5 <- chain(r4).
void EmitChain(Assembler& as, const std::vector<ChainOp>& chain) {
  int src = 4;
  for (const ChainOp& c : chain) {
    as.Alu(c.op, 5, src, c.konst_reg);
    src = 5;
  }
  if (chain.empty()) as.Mov(5, 4);
}

// Random source elements. `maxv` bounds values (inclusive); `minv` floors
// them (lets the sentinel/early-exit builders reserve 0 / the magic value).
template <typename T>
std::vector<T> RandomData(Rng& rng, int n, std::uint32_t minv,
                          std::uint32_t maxv) {
  std::vector<T> v(n);
  for (int i = 0; i < n; ++i) {
    v[i] = static_cast<T>(rng.Range(minv, maxv));
  }
  return v;
}

// Applies the common scaffolding: name, provenance, byte budget.
void Finalize(sim::Workload& wl, std::uint64_t seed, LoopClass cls,
              std::uint64_t count, std::uint64_t bytes_moved) {
  wl.name = "gen-" + std::string(ToString(cls)) + "-s" + std::to_string(seed);
  wl.mem_bytes = 1 << 20;
  wl.autovec = wl.scalar;
  wl.handvec = wl.scalar;
  wl.gen = sim::GenInfo{seed, std::string(ToString(cls)), count};
  wl.stream_bytes = bytes_moved;
}

// Per-element transform kernels share one golden-model template: walk the
// source, apply the chain, truncate to the element width.
template <typename T>
std::vector<T> GoldenTransform(const std::vector<T>& src,
                               const std::vector<ChainOp>& chain, int bytes) {
  std::vector<T> dst(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<T>(Truncate(EvalChain(chain, src[i]), bytes));
  }
  return dst;
}

// --- counted: the straight count-loop path ---------------------------------
template <typename T>
sim::Workload BuildCounted(Rng& rng, std::uint64_t seed, const Elem& e) {
  const int n = static_cast<int>(rng.Range(96, 256));
  const auto chain = PickChain(rng, static_cast<int>(rng.Range(1, 3)), 10);

  sim::Workload wl;
  Assembler as;
  EmitChainConsts(as, chain);
  as.Movi(0, kSrc);
  as.Movi(1, kDst);
  as.Movi(3, n);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Emit(isa::MakeLoad(e.load, 4, 0, e.bytes));
  EmitChain(as, chain);
  as.Emit(isa::MakeStore(e.store, 5, 1, e.bytes));
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  wl.scalar = as.Finish();
  wl.loop_type_fractions = {{"count", 1.0}};

  auto src = RandomData<T>(rng, n, 0, Truncate(0xFFFFFFFFu, e.bytes));
  auto dst = GoldenTransform(src, chain, e.bytes);
  wl.init = [src](mem::Memory& m) { WriteVec(m, kSrc, src); };
  AddGoldenOutput(wl, kDst, dst);
  Finalize(wl, seed, LoopClass::kCounted, n,
           2ull * static_cast<std::uint64_t>(n) * e.bytes);
  return wl;
}

// --- sentinel: data-dependent latch (store-then-test, as in StrCopy) -------
sim::Workload BuildSentinel(Rng& rng, std::uint64_t seed) {
  const int n = static_cast<int>(rng.Range(64, 200));  // bytes before the NUL
  const auto chain = PickChain(rng, static_cast<int>(rng.Range(1, 2)), 10);

  sim::Workload wl;
  Assembler as;
  EmitChainConsts(as, chain);
  as.Movi(0, kSrc);
  as.Movi(1, kDst);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldrb(4, 0, 1);
  EmitChain(as, chain);
  as.Strb(5, 1, 1);
  as.Cmpi(4, 0);
  as.B(Cond::kNe, loop);
  as.Halt();
  wl.scalar = as.Finish();
  wl.loop_type_fractions = {{"sentinel", 1.0}};

  auto src = RandomData<std::uint8_t>(rng, n + 1, 1, 255);
  src[n] = 0;
  auto dst = GoldenTransform(src, chain, 1);
  wl.init = [src](mem::Memory& m) { WriteVec(m, kSrc, src); };
  AddGoldenOutput(wl, kDst, dst);
  Finalize(wl, seed, LoopClass::kSentinel, n,
           2ull * static_cast<std::uint64_t>(n + 1));
  return wl;
}

// --- conditional: if/else arms, each with its own chain and store ----------
template <typename T>
sim::Workload BuildConditional(Rng& rng, std::uint64_t seed, const Elem& e) {
  const int n = static_cast<int>(rng.Range(96, 256));
  // Keep values in signed-positive range so Cmp (signed) matches unsigned
  // data for every element width.
  const std::uint32_t maxv = e.bytes == 1 ? 0xFF : 0x7FFF;
  const std::uint32_t threshold = rng.Range(1, maxv - 1);
  const auto then_chain = PickChain(rng, static_cast<int>(rng.Range(1, 2)), 10);
  const auto else_chain = PickChain(rng, static_cast<int>(rng.Range(1, 2)), 12);

  sim::Workload wl;
  Assembler as;
  EmitChainConsts(as, then_chain);
  EmitChainConsts(as, else_chain);
  as.Movi(9, static_cast<std::int32_t>(threshold));
  as.Movi(0, kSrc);
  as.Movi(1, kDst);
  as.Movi(3, n);
  const auto loop = as.NewLabel();
  const auto else_l = as.NewLabel();
  const auto next = as.NewLabel();
  as.Bind(loop);
  as.Emit(isa::MakeLoad(e.load, 4, 0, e.bytes));
  as.Cmp(4, 9);
  as.B(Cond::kLe, else_l);
  EmitChain(as, then_chain);
  as.Emit(isa::MakeStore(e.store, 5, 1, e.bytes));
  as.B(Cond::kAl, next);
  as.Bind(else_l);
  EmitChain(as, else_chain);
  as.Emit(isa::MakeStore(e.store, 5, 1, e.bytes));
  as.Bind(next);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  wl.scalar = as.Finish();
  wl.loop_type_fractions = {{"conditional", 1.0}};

  auto src = RandomData<T>(rng, n, 0, maxv);
  std::vector<T> dst(n);
  for (int i = 0; i < n; ++i) {
    const bool then_arm =
        static_cast<std::int32_t>(src[i]) > static_cast<std::int32_t>(threshold);
    dst[i] = static_cast<T>(Truncate(
        EvalChain(then_arm ? then_chain : else_chain, src[i]), e.bytes));
  }
  wl.init = [src](mem::Memory& m) { WriteVec(m, kSrc, src); };
  AddGoldenOutput(wl, kDst, dst);
  Finalize(wl, seed, LoopClass::kConditional, n,
           2ull * static_cast<std::uint64_t>(n) * e.bytes);
  return wl;
}

// --- nested: inner count loop under a row loop (the Fig. 17 fusion path) ---
template <typename T>
sim::Workload BuildNested(Rng& rng, std::uint64_t seed, const Elem& e) {
  const int rows = static_cast<int>(rng.Range(4, 10));
  const int cols = static_cast<int>(rng.Range(24, 64));
  const int n = rows * cols;
  const auto chain = PickChain(rng, static_cast<int>(rng.Range(1, 3)), 10);

  sim::Workload wl;
  Assembler as;
  EmitChainConsts(as, chain);
  as.Movi(0, kSrc);
  as.Movi(1, kDst);
  as.Movi(8, rows);
  const auto outer = as.NewLabel();
  as.Bind(outer);
  as.Movi(3, cols);
  const auto inner = as.NewLabel();
  as.Bind(inner);
  as.Emit(isa::MakeLoad(e.load, 4, 0, e.bytes));
  EmitChain(as, chain);
  as.Emit(isa::MakeStore(e.store, 5, 1, e.bytes));
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, inner);
  as.AluImm(Opcode::kSubi, 8, 8, 1);
  as.Cmpi(8, 0);
  as.B(Cond::kGt, outer);
  as.Halt();
  wl.scalar = as.Finish();
  wl.loop_type_fractions = {{"count", 0.9}, {"outer", 0.1}};

  auto src = RandomData<T>(rng, n, 0, Truncate(0xFFFFFFFFu, e.bytes));
  auto dst = GoldenTransform(src, chain, e.bytes);
  wl.init = [src](mem::Memory& m) { WriteVec(m, kSrc, src); };
  AddGoldenOutput(wl, kDst, dst);
  Finalize(wl, seed, LoopClass::kNested, n,
           2ull * static_cast<std::uint64_t>(n) * e.bytes);
  return wl;
}

// --- stride-variant: every-other-element access, the kNonUnitStride path ---
template <typename T>
sim::Workload BuildStrideVariant(Rng& rng, std::uint64_t seed, const Elem& e) {
  const int n = static_cast<int>(rng.Range(64, 160));  // elements processed
  const auto chain = PickChain(rng, static_cast<int>(rng.Range(1, 2)), 10);

  sim::Workload wl;
  Assembler as;
  EmitChainConsts(as, chain);
  as.Movi(0, kSrc);
  as.Movi(1, kDst);
  as.Movi(3, n);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Emit(isa::MakeLoad(e.load, 4, 0, 2 * e.bytes));  // stride 2 elements
  EmitChain(as, chain);
  as.Emit(isa::MakeStore(e.store, 5, 1, 2 * e.bytes));
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  wl.scalar = as.Finish();
  wl.loop_type_fractions = {{"non-vectorizable", 1.0}};

  // Source covers 2n element slots; only even slots are read/written.
  auto src = RandomData<T>(rng, 2 * n, 0, Truncate(0xFFFFFFFFu, e.bytes));
  std::vector<T> dst(2 * n, 0);
  for (int i = 0; i < n; ++i) {
    dst[2 * i] = static_cast<T>(Truncate(EvalChain(chain, src[2 * i]), e.bytes));
  }
  wl.init = [src, zero = std::vector<T>(src.size(), T{0})](mem::Memory& m) {
    WriteVec(m, kSrc, src);
    WriteVec(m, kDst, zero);  // make untouched odd slots deterministic
  };
  AddGoldenOutput(wl, kDst, dst);
  Finalize(wl, seed, LoopClass::kStrideVariant, n,
           2ull * static_cast<std::uint64_t>(n) * e.bytes);
  return wl;
}

// --- early-exit: count loop with a data-dependent break mid-body -----------
template <typename T>
sim::Workload BuildEarlyExit(Rng& rng, std::uint64_t seed, const Elem& e) {
  const int n = static_cast<int>(rng.Range(96, 200));
  const int stop = static_cast<int>(rng.Range(n / 2, n - 1));  // magic index
  const std::uint32_t magic = Truncate(0xFFFFFFFFu, e.bytes);
  const auto chain = PickChain(rng, static_cast<int>(rng.Range(1, 2)), 10);

  sim::Workload wl;
  Assembler as;
  EmitChainConsts(as, chain);
  as.Movi(9, static_cast<std::int32_t>(magic));
  as.Movi(0, kSrc);
  as.Movi(1, kDst);
  as.Movi(3, n);
  const auto loop = as.NewLabel();
  const auto done = as.NewLabel();
  as.Bind(loop);
  as.Emit(isa::MakeLoad(e.load, 4, 0, e.bytes));
  as.Cmp(4, 9);
  as.B(Cond::kEq, done);  // break on the planted terminator
  EmitChain(as, chain);
  as.Emit(isa::MakeStore(e.store, 5, 1, e.bytes));
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Bind(done);
  as.Halt();
  wl.scalar = as.Finish();
  wl.loop_type_fractions = {{"dynamic-range", 1.0}};

  // Values stay below magic; the terminator sits at `stop`.
  auto src = RandomData<T>(rng, n, 0, magic - 1);
  src[stop] = static_cast<T>(magic);
  std::vector<T> dst(n, 0);
  for (int i = 0; i < stop; ++i) {
    dst[i] = static_cast<T>(Truncate(EvalChain(chain, src[i]), e.bytes));
  }
  wl.init = [src, zero = std::vector<T>(src.size(), T{0})](mem::Memory& m) {
    WriteVec(m, kSrc, src);
    WriteVec(m, kDst, zero);
  };
  AddGoldenOutput(wl, kDst, dst);
  Finalize(wl, seed, LoopClass::kEarlyExit, stop,
           2ull * static_cast<std::uint64_t>(stop) * e.bytes);
  return wl;
}

template <typename T>
sim::Workload Dispatch(Rng& rng, std::uint64_t seed, LoopClass cls,
                       const Elem& e) {
  switch (cls) {
    case LoopClass::kCounted: return BuildCounted<T>(rng, seed, e);
    case LoopClass::kSentinel: return BuildSentinel(rng, seed);
    case LoopClass::kConditional: return BuildConditional<T>(rng, seed, e);
    case LoopClass::kNested: return BuildNested<T>(rng, seed, e);
    case LoopClass::kStrideVariant: return BuildStrideVariant<T>(rng, seed, e);
    case LoopClass::kEarlyExit: return BuildEarlyExit<T>(rng, seed, e);
  }
  assert(false);
  return {};
}

}  // namespace

std::string_view ToString(LoopClass c) {
  switch (c) {
    case LoopClass::kCounted: return "counted";
    case LoopClass::kSentinel: return "sentinel";
    case LoopClass::kConditional: return "conditional";
    case LoopClass::kNested: return "nested";
    case LoopClass::kStrideVariant: return "stride-variant";
    case LoopClass::kEarlyExit: return "early-exit";
  }
  return "?";
}

sim::Workload MakeGenerated(std::uint64_t seed, LoopClass cls) {
  // Key the stream by (seed, class) so the same seed yields independent
  // draws per class instead of six reskins of one shape.
  Rng rng{seed * 0x9E3779B97F4A7C15ull +
          (static_cast<std::uint64_t>(cls) + 1) * 0xD1B54A32D192ED03ull};
  rng.Next();
  const Elem e = PickElem(rng);
  switch (e.bytes) {
    case 1: return Dispatch<std::uint8_t>(rng, seed, cls, e);
    case 2: return Dispatch<std::uint16_t>(rng, seed, cls, e);
    default: return Dispatch<std::uint32_t>(rng, seed, cls, e);
  }
}

std::vector<sim::Workload> GeneratedSet(std::uint64_t base_seed, int count) {
  std::vector<sim::Workload> v;
  v.reserve(count);
  for (int i = 0; i < count; ++i) {
    v.push_back(MakeGenerated(base_seed + static_cast<std::uint64_t>(i),
                              static_cast<LoopClass>(i % kNumLoopClasses)));
  }
  return v;
}

}  // namespace dsa::workloads::gen
