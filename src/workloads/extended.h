// Extended kernel suite beyond the paper's benchmark list (see
// extended.cc). These deepen the coverage of the DSA's capability
// envelope: multi-stream offset loads, 16-lane byte kernels,
// runtime-invariant coefficients, and indirect addressing (rejected).
#pragma once

#include <vector>

#include "sim/workload.h"

namespace dsa::workloads {

// 4-tap int32 FIR filter: y[i] = sum x[i+t]*h[t].
[[nodiscard]] sim::Workload MakeFir(int n = 8192);

// Byte memcpy: the maximum-parallelism (16 lanes) kernel.
[[nodiscard]] sim::Workload MakeMemCopy(int n = 32768);

// out = (a*alpha + b*(256-alpha)) >> 8 over u16, alpha read at runtime.
[[nodiscard]] sim::Workload MakeAlphaBlend(int n = 16384, int alpha = 96);

// hist[v[i]]++ — indirect addressing, unvectorizable by design.
[[nodiscard]] sim::Workload MakeHistogram(int n = 16384, int buckets = 64);

[[nodiscard]] std::vector<sim::Workload> ExtendedSet();

}  // namespace dsa::workloads
