// Iterative quicksort (MiBench QSort): an explicit-stack driver loop around
// a Lomuto partition. Every loop either contains an inner loop, carries
// scalars around iterations, or advances its stores data-dependently — no
// system can vectorize it, so it measures the *cost of trying* (analysis
// latency for the DSA, guard overhead for the auto-vectorizer).
#include <algorithm>

#include "prog/assembler.h"
#include "vectorizer/static_vectorizer.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using prog::Assembler;

namespace {

constexpr std::uint32_t kArr = 0x10000;
constexpr std::uint32_t kStack = 0x80000;

prog::Program Build(int n, bool with_guard) {
  Assembler as;
  as.Movi(0, kArr);
  as.Movi(13, kStack);
  if (with_guard) vectorizer::EmitAutoVecGuard(as, 0, 13, 6);
  // push (lo = &a[0], hi = &a[n-1])
  as.Movi(1, kArr);
  as.Movi(2, kArr + (n - 1) * 4);
  as.Str(1, 13, 4);
  as.Str(2, 13, 4);

  const auto lwhile = as.NewLabel();
  const auto ldone = as.NewLabel();
  const auto lpart = as.NewLabel();
  const auto lpdone = as.NewLabel();
  const auto lnoswap = as.NewLabel();

  as.Bind(lwhile);
  as.Cmpi(13, kStack);
  as.B(Cond::kLe, ldone);
  // pop hi, lo
  as.AluImm(Opcode::kSubi, 13, 13, 4);
  as.Ldr(2, 13);
  as.AluImm(Opcode::kSubi, 13, 13, 4);
  as.Ldr(1, 13);
  as.Cmp(1, 2);
  as.B(Cond::kGe, lwhile);
  // partition: pivot = *hi
  as.Ldr(4, 2);
  as.Mov(5, 1);  // store slot
  as.Mov(6, 1);  // scan pointer
  as.Bind(lpart);
  as.Cmp(6, 2);
  as.B(Cond::kGe, lpdone);
  as.Ldr(7, 6);
  as.Cmp(7, 4);
  as.B(Cond::kGt, lnoswap);
  as.Ldr(8, 5);
  as.Str(7, 5);
  as.Str(8, 6);
  as.AluImm(Opcode::kAddi, 5, 5, 4);
  as.Bind(lnoswap);
  as.AluImm(Opcode::kAddi, 6, 6, 4);
  as.B(Cond::kAl, lpart);
  as.Bind(lpdone);
  // place pivot: swap *slot, *hi
  as.Ldr(8, 5);
  as.Str(4, 5);
  as.Str(8, 2);
  // push (lo, slot-4) and (slot+4, hi)
  as.AluImm(Opcode::kSubi, 9, 5, 4);
  as.Str(1, 13, 4);
  as.Str(9, 13, 4);
  as.AluImm(Opcode::kAddi, 9, 5, 4);
  as.Str(9, 13, 4);
  as.Str(2, 13, 4);
  as.B(Cond::kAl, lwhile);
  as.Bind(ldone);
  as.Halt();
  return as.Finish();
}

}  // namespace

sim::Workload MakeQSort(int n) {
  sim::Workload wl;
  wl.name = "Q Sort";
  wl.mem_bytes = 1 << 20;
  wl.scalar = Build(n, /*with_guard=*/false);
  wl.autovec = Build(n, /*with_guard=*/true);
  wl.handvec = Build(n, /*with_guard=*/false);
  wl.loop_type_fractions = {{"non-vectorizable", 1.0}};

  std::vector<std::uint32_t> a(n);
  std::uint32_t seed = 0x9507BEEFu;
  for (int i = 0; i < n; ++i) a[i] = XorShift(seed) % 100000;
  std::vector<std::uint32_t> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  wl.init = [a](mem::Memory& m) { WriteVec(m, kArr, a); };
  AddGoldenOutput(wl, kArr, sorted);
  return wl;
}

}  // namespace dsa::workloads
