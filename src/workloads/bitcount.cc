// SWAR population count over an int32 array whose length is only known at
// runtime (loaded from memory before the loop): a Dynamic Range Loop type A
// (Section 4.6.6). The ARM auto-vectorizer cannot vectorize a loop whose
// iteration count is not fixed at loop start (Table 1 line 4); the DSA and
// a hand coder reading the runtime length can.
#include "prog/assembler.h"
#include "vectorizer/static_vectorizer.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using isa::VecType;
using prog::Assembler;

namespace {

constexpr std::uint32_t kN = 0x0F000;  // runtime element count lives here
constexpr std::uint32_t kIn = 0x10000;
constexpr std::uint32_t kOut = 0x40000;

void EmitConstants(Assembler& as) {
  as.Movi(7, 0x55555555);
  as.Movi(9, 0x33333333);
  as.Movi(10, 0x0F0F0F0F);
  as.Movi(11, 0x01010101);
  as.Movi(2, 1);
  as.Movi(13, 2);
  as.Movi(12, 4);
  as.Movi(14, 24);
}

// popcount(x) via the SWAR sequence; input in r4, result in r4, r5/r6 tmp.
void EmitSwar(Assembler& as) {
  as.Alu(Opcode::kLsr, 5, 4, 2);    // x >> 1
  as.Alu(Opcode::kAnd, 5, 5, 7);    // & 0x5555...
  as.Alu(Opcode::kSub, 4, 4, 5);
  as.Alu(Opcode::kLsr, 5, 4, 13);   // x >> 2
  as.Alu(Opcode::kAnd, 5, 5, 9);
  as.Alu(Opcode::kAnd, 4, 4, 9);
  as.Alu(Opcode::kAdd, 4, 4, 5);
  as.Alu(Opcode::kLsr, 5, 4, 12);   // x >> 4
  as.Alu(Opcode::kAdd, 4, 4, 5);
  as.Alu(Opcode::kAnd, 4, 4, 10);
  as.Alu(Opcode::kMul, 4, 4, 11);
  as.Alu(Opcode::kLsr, 4, 4, 14);   // >> 24
}

void EmitVSwar(Assembler& as) {
  // Same sequence on q registers; constants broadcast in q7/q9/q10/q11.
  as.VShift(Opcode::kVshr, VecType::kI32, 5, 1, 1);
  as.Vop(Opcode::kVand, VecType::kI32, 5, 5, 7);
  as.Vop(Opcode::kVsub, VecType::kI32, 8, 1, 5);
  as.VShift(Opcode::kVshr, VecType::kI32, 5, 8, 2);
  as.Vop(Opcode::kVand, VecType::kI32, 5, 5, 9);
  as.Vop(Opcode::kVand, VecType::kI32, 8, 8, 9);
  as.Vop(Opcode::kVadd, VecType::kI32, 8, 8, 5);
  as.VShift(Opcode::kVshr, VecType::kI32, 5, 8, 4);
  as.Vop(Opcode::kVadd, VecType::kI32, 8, 8, 5);
  as.Vop(Opcode::kVand, VecType::kI32, 8, 8, 10);
  as.Vop(Opcode::kVmul, VecType::kI32, 8, 8, 11);
  as.VShift(Opcode::kVshr, VecType::kI32, 8, 8, 24);
}

prog::Program BuildScalar() {
  Assembler as;
  EmitConstants(as);
  as.Movi(0, kIn);
  as.Movi(1, kOut);
  as.Movi(3, kN);
  as.Ldr(3, 3);  // runtime length: the loop limit lives in a register
  as.Movi(6, 0);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  EmitSwar(as);
  as.Str(4, 1, 4);
  as.AluImm(Opcode::kAddi, 6, 6, 1);
  as.Cmp(6, 3);
  as.B(Cond::kLt, loop);
  as.Halt();
  return as.Finish();
}

// Auto-vectorizer output: it cannot vectorize the runtime-ranged loop, so
// it emits its guard sequence and keeps the scalar loop.
prog::Program BuildAutoVec() {
  Assembler as;
  EmitConstants(as);
  as.Movi(0, kIn);
  as.Movi(1, kOut);
  as.Movi(3, kN);
  as.Ldr(3, 3);
  vectorizer::EmitAutoVecGuard(as, 0, 1, 5);
  as.Movi(6, 0);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  EmitSwar(as);
  as.Str(4, 1, 4);
  as.AluImm(Opcode::kAddi, 6, 6, 1);
  as.Cmp(6, 3);
  as.B(Cond::kLt, loop);
  as.Halt();
  return as.Finish();
}

// Hand-vectorized: the programmer reads the runtime length and chunks it.
prog::Program BuildHandVec() {
  Assembler as;
  EmitConstants(as);
  as.Movi(0, kIn);
  as.Movi(1, kOut);
  as.Movi(3, kN);
  as.Ldr(3, 3);
  as.Vdup(VecType::kI32, 7, 7);
  as.Vdup(VecType::kI32, 9, 9);
  as.Vdup(VecType::kI32, 10, 10);
  as.Vdup(VecType::kI32, 11, 11);
  vectorizer::ElementwiseLoopSpec spec;
  spec.type = VecType::kI32;
  spec.load_regs = {0};
  spec.store_regs = {1};
  spec.count_reg = 3;
  spec.per_chunk_overhead_instrs = 8;
  spec.vector_ops = EmitVSwar;
  spec.scalar_ops = [](Assembler& a) {
    EmitSwar(a);      // input in r4 (helper's load register)
    a.Mov(8, 4);      // helper stores from r8
  };
  vectorizer::EmitElementwiseLoop(as, spec);
  as.Halt();
  return as.Finish();
}

}  // namespace

sim::Workload MakeBitCount(int n) {
  sim::Workload wl;
  wl.name = "BitCount";
  wl.mem_bytes = 1 << 20;
  wl.scalar = BuildScalar();
  wl.autovec = BuildAutoVec();
  wl.handvec = BuildHandVec();
  wl.loop_type_fractions = {{"dynamic-range", 1.0}};

  std::vector<std::uint32_t> in(n);
  std::vector<std::uint32_t> out(n);
  std::uint32_t seed = 0xB17C0417u;
  for (int i = 0; i < n; ++i) {
    in[i] = XorShift(seed);
    out[i] = static_cast<std::uint32_t>(__builtin_popcount(in[i]));
  }
  wl.init = [in, n](mem::Memory& m) {
    m.Write32(kN, static_cast<std::uint32_t>(n));
    WriteVec(m, kIn, in);
  };
  AddGoldenOutput(wl, kOut, out);
  return wl;
}

}  // namespace dsa::workloads
