// Benchmark sets matching each article's evaluation section.
#include "workloads/extended.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

std::vector<sim::Workload> Article1Set() {
  // Fig. 12: MM 64x64, RGB-Gray, Gaussian Filter, Susan E, Q Sort, Dijkstra.
  std::vector<sim::Workload> v;
  v.push_back(MakeMatMul(64));
  v.push_back(MakeRgbGray());
  v.push_back(MakeGaussian());
  v.push_back(MakeSusanE());
  v.push_back(MakeQSort());
  v.push_back(MakeDijkstra());
  return v;
}

std::vector<sim::Workload> Article2Set() {
  // Fig. 16 adds BitCounts to the Article 1 set.
  std::vector<sim::Workload> v = Article1Set();
  v.push_back(MakeBitCount());
  return v;
}

std::vector<sim::Workload> Article3Set() {
  // Figs. 7-9 (DATE): the full set plus the DSA-specific kernels.
  std::vector<sim::Workload> v = Article2Set();
  v.push_back(MakeStrCopy());
  v.push_back(MakeShiftAdd());
  return v;
}

std::vector<sim::Workload> AllNamedWorkloads() {
  std::vector<sim::Workload> v = Article3Set();
  v.push_back(MakeVecAdd());
  for (auto& wl : ExtendedSet()) v.push_back(std::move(wl));
  for (auto& wl : StreamingSet()) v.push_back(std::move(wl));
  return v;
}

}  // namespace dsa::workloads
