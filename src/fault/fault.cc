#include "fault/fault.h"

#include <cstdlib>
#include <stdexcept>

namespace dsa::fault {

namespace {

constexpr std::string_view kKindNames[kNumFaultKinds] = {
    "cidp", "cache", "lane", "sentinel", "bitflip", "mem",
};

[[noreturn]] void BadSpec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("bad --faults spec \"" + spec + "\": " + why);
}

// Parses a base-10 uint64 and requires the whole token to be numeric.
bool ParseU64(std::string_view tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::string_view ToString(FaultKind k) {
  const int i = static_cast<int>(k);
  if (i < 0 || i >= kNumFaultKinds) return "?";
  return kKindNames[i];
}

bool ParseFaultKind(std::string_view token, FaultKind& out) {
  for (int i = 0; i < kNumFaultKinds; ++i) {
    if (token == kKindNames[i]) {
      out = static_cast<FaultKind>(i);
      return true;
    }
  }
  return false;
}

FaultPlan ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;

  std::string entries = spec;
  const std::size_t semi = spec.find(';');
  if (semi != std::string::npos) {
    entries = spec.substr(0, semi);
    const std::string tail = spec.substr(semi + 1);
    constexpr std::string_view kSeedKey = "seed=";
    if (tail.rfind(kSeedKey, 0) != 0 ||
        !ParseU64(tail.substr(kSeedKey.size()), plan.seed)) {
      BadSpec(spec, "expected \";seed=<uint>\" after the entries, got \";" +
                        tail + "\"");
    }
    plan.seed_explicit = true;
  }

  std::size_t pos = 0;
  while (pos <= entries.size()) {
    std::size_t comma = entries.find(',', pos);
    if (comma == std::string::npos) comma = entries.size();
    const std::string entry = entries.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) BadSpec(spec, "empty entry");

    const std::size_t at = entry.find('@');
    if (at == std::string::npos) {
      BadSpec(spec, "entry \"" + entry + "\" misses \"@<trigger>\"");
    }
    FaultSpec fs;
    if (!ParseFaultKind(entry.substr(0, at), fs.kind)) {
      BadSpec(spec, "unknown fault kind \"" + entry.substr(0, at) +
                        "\" (want cidp|cache|lane|sentinel|bitflip|mem)");
    }
    std::string rest = entry.substr(at + 1);
    const std::size_t plus = rest.find('+');
    if (plus != std::string::npos) {
      const std::string count = rest.substr(plus + 1);
      if (count.empty()) {
        fs.count = UINT64_MAX;
      } else if (!ParseU64(count, fs.count) || fs.count == 0) {
        BadSpec(spec, "bad repeat count \"" + count + "\" in \"" + entry +
                          "\"");
      }
      rest = rest.substr(0, plus);
    }
    if (!ParseU64(rest, fs.trigger)) {
      BadSpec(spec, "bad trigger \"" + rest + "\" in \"" + entry + "\"");
    }
    plan.specs.push_back(fs);
    if (comma == entries.size()) break;
  }
  return plan;
}

std::string FormatFaultPlan(const FaultPlan& plan) {
  std::string out;
  for (const FaultSpec& fs : plan.specs) {
    if (!out.empty()) out += ",";
    out += std::string(ToString(fs.kind)) + "@" + std::to_string(fs.trigger);
    if (fs.count == UINT64_MAX) {
      out += "+";
    } else if (fs.count != 1) {
      out += "+";
      out += std::to_string(fs.count);
    }
  }
  if (plan.seed_explicit) out += ";seed=" + std::to_string(plan.seed);
  return out;
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    rng_[k] = plan_.seed * 0x9e3779b97f4a7c15ull +
              0xd1b54a32d192ed03ull * static_cast<std::uint64_t>(k + 1);
  }
}

bool FaultInjector::Fire(FaultKind k) {
  const int i = static_cast<int>(k);
  const std::uint64_t opportunity = opportunities_[i]++;
  for (const FaultSpec& fs : plan_.specs) {
    if (fs.kind != k || opportunity < fs.trigger) continue;
    const std::uint64_t since = opportunity - fs.trigger;
    if (fs.count == UINT64_MAX || since < fs.count) {
      ++fired_[i];
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::Rand(FaultKind k) {
  std::uint64_t v = SplitMix64(rng_[static_cast<int>(k)]);
  if (v == 0) v = 1;
  return v;
}

std::uint64_t FaultInjector::total_fired() const {
  std::uint64_t n = 0;
  for (const std::uint64_t f : fired_) n += f;
  return n;
}

}  // namespace dsa::fault
