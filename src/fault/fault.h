// Deterministic fault-injection subsystem: a seeded FaultPlan describes
// which faults to arm (kind + trigger + repeat count) and a FaultInjector
// turns it into per-opportunity fire decisions during one run. Every fire
// decision is a pure function of {plan, opportunity index}, so a faulted
// run is exactly as repeatable as a clean one — which is what lets the
// differential oracle check faulted cells for determinism and for
// bit-identical recovery against the fault-free baseline.
//
// The library is dependency-free on purpose: the engine (speculation
// guard, DSA-cache corruption hooks) and the sim harness (SystemConfig,
// CLI) both consume it. docs/FAULTS.md documents the spec grammar and the
// semantics of each fault kind.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dsa::fault {

// Stable fault-kind IDs (the bench JSON and the trace events carry the
// numeric value; append only).
enum class FaultKind : std::uint8_t {
  kCidpMispredict = 0,  // force a wrong CIDP verdict on a cache-hit plan
  kCacheCorrupt = 1,    // flip bits in a stored DSA-cache loop record
  kWrongLane = 2,       // Vector Map selects the wrong lane (cond. loops)
  kSentinelOverrun = 3, // speculative stores past the sentinel element
  kLaneBitflip = 4,     // single-event upset in a NEON lane
  kMemFault = 5,        // wild stream base address out of memory range
};
inline constexpr int kNumFaultKinds = 6;

[[nodiscard]] std::string_view ToString(FaultKind k);
// Parses a kind token ("cidp", "cache", "lane", "sentinel", "bitflip",
// "mem"); returns false on an unknown token.
[[nodiscard]] bool ParseFaultKind(std::string_view token, FaultKind& out);

// One armed fault: fire on opportunities [trigger, trigger + count).
// Opportunities are counted per kind, starting at 0 (so trigger 0 fires on
// the first chance the run offers this kind of fault).
struct FaultSpec {
  FaultKind kind = FaultKind::kCidpMispredict;
  std::uint64_t trigger = 0;
  std::uint64_t count = 1;  // UINT64_MAX ("+" in the grammar) = every one
};

struct FaultPlan {
  std::vector<FaultSpec> specs;
  std::uint64_t seed = 0;
  bool seed_explicit = false;  // ";seed=N" was present in the spec string

  [[nodiscard]] bool enabled() const { return !specs.empty(); }
};

// Parses the --faults grammar (docs/FAULTS.md):
//   plan  := entry ("," entry)* (";seed=" uint)?
//   entry := kind "@" trigger ["+" [count]]
// e.g. "cidp@0", "bitflip@2+3,mem@1", "cache@0+;seed=42".
// Throws std::invalid_argument with a pointed message on bad input.
[[nodiscard]] FaultPlan ParseFaultPlan(const std::string& spec);

// Inverse of ParseFaultPlan (canonical form; round-trips).
[[nodiscard]] std::string FormatFaultPlan(const FaultPlan& plan);

// Per-run injector: counts opportunities per kind and decides which fire.
// Not thread-safe; one injector per sim::Run.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // Registers one opportunity for `k` and returns true when an armed spec
  // says this one fires. Call exactly once per opportunity site.
  [[nodiscard]] bool Fire(FaultKind k);

  // Deterministic pseudo-random payload for the next corruption of kind
  // `k` (splitmix64 stream seeded from plan.seed and the kind). Never
  // returns 0, so XOR-corruptions always change the target.
  [[nodiscard]] std::uint64_t Rand(FaultKind k);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const std::array<std::uint64_t, kNumFaultKinds>&
  opportunities() const {
    return opportunities_;
  }
  [[nodiscard]] const std::array<std::uint64_t, kNumFaultKinds>& fired()
      const {
    return fired_;
  }
  [[nodiscard]] std::uint64_t total_fired() const;

 private:
  FaultPlan plan_;
  std::array<std::uint64_t, kNumFaultKinds> opportunities_{};
  std::array<std::uint64_t, kNumFaultKinds> fired_{};
  std::array<std::uint64_t, kNumFaultKinds> rng_{};
};

// Summary of one faulted run, carried by sim::RunResult so reports and the
// oracle can see what the injector actually did.
struct FaultReport {
  FaultPlan plan;
  std::array<std::uint64_t, kNumFaultKinds> opportunities{};
  std::array<std::uint64_t, kNumFaultKinds> fired{};

  [[nodiscard]] std::uint64_t total_fired() const {
    std::uint64_t n = 0;
    for (const std::uint64_t f : fired) n += f;
    return n;
  }
};

}  // namespace dsa::fault
