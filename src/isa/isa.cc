#include "isa/instruction.h"
#include "isa/opcode.h"

#include <sstream>

namespace dsa::isa {

std::string_view ToString(Opcode op) {
  switch (op) {
    case Opcode::kLdr: return "ldr";
    case Opcode::kLdrh: return "ldrh";
    case Opcode::kLdrb: return "ldrb";
    case Opcode::kStr: return "str";
    case Opcode::kStrh: return "strh";
    case Opcode::kStrb: return "strb";
    case Opcode::kMov: return "mov";
    case Opcode::kMovi: return "movi";
    case Opcode::kAdd: return "add";
    case Opcode::kAddi: return "addi";
    case Opcode::kSub: return "sub";
    case Opcode::kSubi: return "subi";
    case Opcode::kRsb: return "rsb";
    case Opcode::kMul: return "mul";
    case Opcode::kMla: return "mla";
    case Opcode::kSdiv: return "sdiv";
    case Opcode::kAnd: return "and";
    case Opcode::kAndi: return "andi";
    case Opcode::kOrr: return "orr";
    case Opcode::kEor: return "eor";
    case Opcode::kBic: return "bic";
    case Opcode::kLsl: return "lsl";
    case Opcode::kLsr: return "lsr";
    case Opcode::kAsr: return "asr";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kFadd: return "fadd";
    case Opcode::kFsub: return "fsub";
    case Opcode::kFmul: return "fmul";
    case Opcode::kFdiv: return "fdiv";
    case Opcode::kCmp: return "cmp";
    case Opcode::kCmpi: return "cmpi";
    case Opcode::kB: return "b";
    case Opcode::kBl: return "bl";
    case Opcode::kRet: return "ret";
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kVld1: return "vld1";
    case Opcode::kVst1: return "vst1";
    case Opcode::kVldLane: return "vld.lane";
    case Opcode::kVstLane: return "vst.lane";
    case Opcode::kVdup: return "vdup";
    case Opcode::kVadd: return "vadd";
    case Opcode::kVsub: return "vsub";
    case Opcode::kVmul: return "vmul";
    case Opcode::kVmla: return "vmla";
    case Opcode::kVmin: return "vmin";
    case Opcode::kVmax: return "vmax";
    case Opcode::kVand: return "vand";
    case Opcode::kVorr: return "vorr";
    case Opcode::kVeor: return "veor";
    case Opcode::kVshl: return "vshl";
    case Opcode::kVshr: return "vshr";
    case Opcode::kVcge: return "vcge";
    case Opcode::kVcgt: return "vcgt";
    case Opcode::kVceq: return "vceq";
    case Opcode::kVbsl: return "vbsl";
    case Opcode::kVmovToScalar: return "vmov.s";
    case Opcode::kVmovFromScalar: return "vmov.v";
  }
  return "?";
}

std::string_view ToString(Cond c) {
  switch (c) {
    case Cond::kAl: return "";
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kLt: return "lt";
    case Cond::kGe: return "ge";
    case Cond::kGt: return "gt";
    case Cond::kLe: return "le";
  }
  return "?";
}

std::string_view ToString(VecType t) {
  switch (t) {
    case VecType::kI8: return ".i8";
    case VecType::kI16: return ".i16";
    case VecType::kI32: return ".i32";
    case VecType::kF32: return ".f32";
  }
  return "?";
}

std::string_view ToString(InstrClass c) {
  switch (c) {
    case InstrClass::kMemRead: return "mem-read";
    case InstrClass::kMemWrite: return "mem-write";
    case InstrClass::kIntAlu: return "int-alu";
    case InstrClass::kFpAlu: return "fp-alu";
    case InstrClass::kCompare: return "compare";
    case InstrClass::kBranch: return "branch";
    case InstrClass::kCall: return "call";
    case InstrClass::kRet: return "ret";
    case InstrClass::kVecMem: return "vec-mem";
    case InstrClass::kVecAlu: return "vec-alu";
    case InstrClass::kMisc: return "misc";
  }
  return "?";
}

InstrClass ClassOf(Opcode op) {
  switch (op) {
    case Opcode::kLdr:
    case Opcode::kLdrh:
    case Opcode::kLdrb:
      return InstrClass::kMemRead;
    case Opcode::kStr:
    case Opcode::kStrh:
    case Opcode::kStrb:
      return InstrClass::kMemWrite;
    case Opcode::kFadd:
    case Opcode::kFsub:
    case Opcode::kFmul:
    case Opcode::kFdiv:
      return InstrClass::kFpAlu;
    case Opcode::kCmp:
    case Opcode::kCmpi:
      return InstrClass::kCompare;
    case Opcode::kB:
      return InstrClass::kBranch;
    case Opcode::kBl:
      return InstrClass::kCall;
    case Opcode::kRet:
      return InstrClass::kRet;
    case Opcode::kVld1:
    case Opcode::kVst1:
    case Opcode::kVldLane:
    case Opcode::kVstLane:
      return InstrClass::kVecMem;
    case Opcode::kVdup:
    case Opcode::kVadd:
    case Opcode::kVsub:
    case Opcode::kVmul:
    case Opcode::kVmla:
    case Opcode::kVmin:
    case Opcode::kVmax:
    case Opcode::kVand:
    case Opcode::kVorr:
    case Opcode::kVeor:
    case Opcode::kVshl:
    case Opcode::kVshr:
    case Opcode::kVcge:
    case Opcode::kVcgt:
    case Opcode::kVceq:
    case Opcode::kVbsl:
    case Opcode::kVmovToScalar:
    case Opcode::kVmovFromScalar:
      return InstrClass::kVecAlu;
    case Opcode::kNop:
    case Opcode::kHalt:
      return InstrClass::kMisc;
    default:
      return InstrClass::kIntAlu;
  }
}

bool IsVector(Opcode op) {
  const InstrClass c = ClassOf(op);
  return c == InstrClass::kVecMem || c == InstrClass::kVecAlu;
}

bool IsMemAccess(Opcode op) {
  const InstrClass c = ClassOf(op);
  return c == InstrClass::kMemRead || c == InstrClass::kMemWrite ||
         c == InstrClass::kVecMem;
}

std::string Instruction::ToAsm() const {
  std::ostringstream os;
  os << ToString(op);
  if (op == Opcode::kNop || op == Opcode::kHalt || op == Opcode::kRet) {
    return os.str();
  }
  if (op == Opcode::kB) os << std::string(isa::ToString(cond));
  if (IsVector(op)) os << std::string(isa::ToString(vt));
  os << ' ';
  const char r = IsVector(op) ? 'q' : 'r';
  switch (cls()) {
    case InstrClass::kMemRead:
      os << r << rd << ", [r" << rn;
      if (imm != 0) os << ", #" << imm;
      os << ']';
      if (post_inc != 0) os << ", #" << post_inc;
      break;
    case InstrClass::kMemWrite:
      os << r << rd << ", [r" << rn;
      if (imm != 0) os << ", #" << imm;
      os << ']';
      if (post_inc != 0) os << ", #" << post_inc;
      break;
    case InstrClass::kVecMem:
      os << 'q' << rd << ", [r" << rn << ']';
      if (post_inc != 0) os << '!';
      break;
    case InstrClass::kBranch:
      os << "#" << imm;
      break;
    case InstrClass::kCall:
      os << "#" << imm;
      break;
    case InstrClass::kCompare:
      if (op == Opcode::kCmpi) {
        os << 'r' << rn << ", #" << imm;
      } else {
        os << 'r' << rn << ", r" << rm;
      }
      break;
    default:
      if (op == Opcode::kMovi) {
        os << 'r' << rd << ", #" << imm;
      } else if (op == Opcode::kMov) {
        os << 'r' << rd << ", r" << rm;
      } else if (op == Opcode::kAddi || op == Opcode::kSubi ||
                 op == Opcode::kAndi || op == Opcode::kRsb) {
        os << r << rd << ", " << r << rn << ", #" << imm;
      } else if (op == Opcode::kVdup) {
        os << 'q' << rd << ", r" << rn;
      } else if (op == Opcode::kVshl || op == Opcode::kVshr) {
        os << 'q' << rd << ", q" << rn << ", #" << imm;
      } else if (op == Opcode::kVmovToScalar) {
        os << 'r' << rd << ", q" << rn << '[' << imm << ']';
      } else if (op == Opcode::kVmovFromScalar) {
        os << 'q' << rd << '[' << imm << "], r" << rn;
      } else if (op == Opcode::kMla || op == Opcode::kVmla) {
        os << r << rd << ", " << r << rn << ", " << r << rm << ", " << r << ra;
      } else {
        os << r << rd << ", " << r << rn << ", " << r << rm;
      }
      break;
  }
  return os.str();
}

Instruction MakeLoad(Opcode op, int rd, int rn, std::int32_t post_inc,
                     std::int32_t offset) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rn = rn;
  i.post_inc = post_inc;
  i.imm = offset;
  return i;
}

Instruction MakeStore(Opcode op, int rd, int rn, std::int32_t post_inc,
                      std::int32_t offset) {
  return MakeLoad(op, rd, rn, post_inc, offset);
}

Instruction MakeAlu(Opcode op, int rd, int rn, int rm) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rn = rn;
  i.rm = rm;
  return i;
}

Instruction MakeAluImm(Opcode op, int rd, int rn, std::int32_t imm) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rn = rn;
  i.imm = imm;
  return i;
}

Instruction MakeMovi(int rd, std::int32_t imm) {
  Instruction i;
  i.op = Opcode::kMovi;
  i.rd = rd;
  i.imm = imm;
  return i;
}

Instruction MakeCmp(int rn, int rm) {
  Instruction i;
  i.op = Opcode::kCmp;
  i.rn = rn;
  i.rm = rm;
  return i;
}

Instruction MakeCmpi(int rn, std::int32_t imm) {
  Instruction i;
  i.op = Opcode::kCmpi;
  i.rn = rn;
  i.imm = imm;
  return i;
}

Instruction MakeBranch(Cond c, std::int32_t target_pc) {
  Instruction i;
  i.op = Opcode::kB;
  i.cond = c;
  i.imm = target_pc;
  return i;
}

Instruction MakeHalt() {
  Instruction i;
  i.op = Opcode::kHalt;
  return i;
}

}  // namespace dsa::isa
