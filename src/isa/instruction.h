// Instruction word of the mini ISA. Instructions are stored unencoded (one
// struct per slot) because the DSA observes architectural fields directly,
// exactly as the paper's trace-level gem5 model does.
#pragma once

#include <cstdint>
#include <string>

#include "isa/opcode.h"

namespace dsa::isa {

// Scalar register indices. 16 general-purpose registers, ARM-style roles.
inline constexpr int kNumScalarRegs = 16;
inline constexpr int kSp = 13;  // stack pointer
inline constexpr int kLr = 14;  // link register
inline constexpr int kNumVecRegs = 16;  // Q0..Q15, 128-bit each

struct Instruction {
  Opcode op = Opcode::kNop;
  Cond cond = Cond::kAl;   // branch condition
  VecType vt = VecType::kI32;

  int rd = 0;   // destination scalar reg (or vector qd for vector ops)
  int rn = 0;   // first source / base address reg (qn for vector)
  int rm = 0;   // second source (qm for vector)
  int ra = 0;   // accumulator source for kMla
  std::int32_t imm = 0;  // immediate / branch target pc / lane index

  // Post-increment writeback amount applied to rn after a memory access
  // (models ARM "ldr r3, [r5], #4"). 0 means no writeback.
  std::int32_t post_inc = 0;

  [[nodiscard]] InstrClass cls() const { return ClassOf(op); }
  [[nodiscard]] std::string ToAsm() const;
};

// --- helpers used by the assembler and workload builders -------------------

Instruction MakeLoad(Opcode op, int rd, int rn, std::int32_t post_inc = 0,
                     std::int32_t offset = 0);
Instruction MakeStore(Opcode op, int rd, int rn, std::int32_t post_inc = 0,
                      std::int32_t offset = 0);
Instruction MakeAlu(Opcode op, int rd, int rn, int rm);
Instruction MakeAluImm(Opcode op, int rd, int rn, std::int32_t imm);
Instruction MakeMovi(int rd, std::int32_t imm);
Instruction MakeCmp(int rn, int rm);
Instruction MakeCmpi(int rn, std::int32_t imm);
Instruction MakeBranch(Cond c, std::int32_t target_pc);
Instruction MakeHalt();

}  // namespace dsa::isa
