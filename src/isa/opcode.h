// Scalar + vector opcode definitions for the ARM-like mini ISA used by the
// DSA reproduction. The scalar subset models the ARMv7-A instructions the
// DSA observes (loads/stores with post-increment, ALU ops, compare,
// conditional branches, call/return); the vector subset models the NEON
// instructions the DSA *generates* (vld1/vst1, typed lane arithmetic,
// bitwise-select for conditional loops, per-lane element access for
// leftover handling).
#pragma once

#include <cstdint>
#include <string_view>

namespace dsa::isa {

enum class Opcode : std::uint8_t {
  // --- scalar memory ---
  kLdr,    // load word          rd <- mem32[rn (+imm)] ; optional post-inc
  kLdrh,   // load halfword (zero-extended)
  kLdrb,   // load byte (zero-extended)
  kStr,    // store word
  kStrh,   // store halfword
  kStrb,   // store byte
  // --- scalar ALU (integer) ---
  kMov,    // rd <- rm
  kMovi,   // rd <- imm
  kAdd,    // rd <- rn + rm
  kAddi,   // rd <- rn + imm
  kSub,    // rd <- rn - rm
  kSubi,   // rd <- rn - imm
  kRsb,    // rd <- imm - rn   (reverse subtract)
  kMul,    // rd <- rn * rm
  kMla,    // rd <- rn * rm + ra
  kSdiv,   // rd <- rn / rm (signed; 0 if rm==0)
  kAnd,    // rd <- rn & rm
  kAndi,   // rd <- rn & imm
  kOrr,    // rd <- rn | rm
  kEor,    // rd <- rn ^ rm
  kBic,    // rd <- rn & ~rm
  kLsl,    // rd <- rn << (rm or imm)
  kLsr,    // rd <- rn >> (rm or imm), logical
  kAsr,    // rd <- rn >> (rm or imm), arithmetic
  kMin,    // rd <- min(rn, rm) signed (models cmp+csel idiom as one op)
  kMax,    // rd <- max(rn, rm) signed
  // --- scalar ALU (float32 held in scalar regs, models VFP single) ---
  kFadd,
  kFsub,
  kFmul,
  kFdiv,
  // --- compare / control flow ---
  kCmp,    // flags <- rn - rm
  kCmpi,   // flags <- rn - imm
  kB,      // conditional / unconditional branch to label (imm = target pc)
  kBl,     // branch with link (call): lr <- pc+1
  kRet,    // pc <- lr
  kNop,
  kHalt,
  // --- vector (NEON-like, 128-bit Q registers) ---
  kVld1,   // qd <- mem[rn], 16 bytes; post-inc rn by 16 when writeback
  kVst1,   // mem[rn] <- qd, 16 bytes; post-inc
  kVldLane,// qd.lane[imm] <- mem[rn] (element-sized), post-inc by elem size
  kVstLane,// mem[rn] <- qd.lane[imm], post-inc
  kVdup,   // qd lanes <- rn (broadcast scalar)
  kVadd,   // qd <- qn + qm (typed lanes)
  kVsub,
  kVmul,
  kVmla,   // qd <- qd + qn*qm
  kVmin,
  kVmax,
  kVand,
  kVorr,
  kVeor,
  kVshl,   // lane shift left by imm
  kVshr,   // lane shift right by imm (logical for unsigned types)
  kVcge,   // lane mask: qd <- (qn >= qm) ? ~0 : 0
  kVcgt,   // lane mask: greater-than
  kVceq,   // lane mask: equal
  kVbsl,   // bitwise select: qd <- (qd & qn) | (~qd & qm)
  kVmovToScalar,   // rd <- qn.lane[imm]
  kVmovFromScalar, // qd.lane[imm] <- rn
};

// Condition codes attached to branches (subset of ARM condition field).
enum class Cond : std::uint8_t {
  kAl,  // always
  kEq,
  kNe,
  kLt,  // signed less-than
  kGe,
  kGt,
  kLe,
};

// Lane type of a vector operation: determines lane count in a 128-bit
// register (16/8/4 lanes) and lane arithmetic.
enum class VecType : std::uint8_t {
  kI8,   // 16 lanes
  kI16,  // 8 lanes
  kI32,  // 4 lanes
  kF32,  // 4 lanes, float
};

// Broad classes the timing model and the DSA observer care about.
enum class InstrClass : std::uint8_t {
  kMemRead,
  kMemWrite,
  kIntAlu,
  kFpAlu,
  kCompare,
  kBranch,
  kCall,
  kRet,
  kVecMem,
  kVecAlu,
  kMisc,
};

[[nodiscard]] std::string_view ToString(Opcode op);
[[nodiscard]] std::string_view ToString(Cond c);
[[nodiscard]] std::string_view ToString(VecType t);
[[nodiscard]] std::string_view ToString(InstrClass c);

[[nodiscard]] InstrClass ClassOf(Opcode op);
[[nodiscard]] bool IsVector(Opcode op);
[[nodiscard]] bool IsMemAccess(Opcode op);

// Number of lanes a 128-bit register holds for a lane type.
[[nodiscard]] constexpr int LaneCount(VecType t) {
  switch (t) {
    case VecType::kI8: return 16;
    case VecType::kI16: return 8;
    default: return 4;
  }
}

// Size in bytes of one lane.
[[nodiscard]] constexpr int LaneBytes(VecType t) {
  switch (t) {
    case VecType::kI8: return 1;
    case VecType::kI16: return 2;
    default: return 4;
  }
}

}  // namespace dsa::isa
