// The DSA's two private memories (Fig. 9):
//  - DSA Cache: loop ID -> LoopRecord for previously analyzed loops
//    (vectorizable or known non-vectorizable), LRU-replaced, 8 kB.
//  - Verification Cache: the data addresses observed during the Data
//    Collection stage, 1 kB; overflowing it aborts the analysis.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "engine/config.h"
#include "engine/loop_info.h"
#include "trace/trace.h"

namespace dsa::engine {

class DsaCache {
 public:
  explicit DsaCache(std::uint32_t max_entries) : max_entries_(max_entries) {}

  // Optional execution tracer; hits/misses/inserts/evictions are emitted
  // as cache events when set.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Returns nullptr on miss. A hit refreshes LRU position.
  [[nodiscard]] const LoopRecord* Lookup(std::uint32_t loop_id);
  [[nodiscard]] LoopRecord* LookupMutable(std::uint32_t loop_id);

  // Inserts or replaces; evicts the LRU record when full.
  void Insert(const LoopRecord& rec);

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t accesses() const { return hits_ + misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  std::uint32_t max_entries_;
  trace::Tracer* tracer_ = nullptr;
  std::list<LoopRecord> lru_;  // front = most recent
  std::unordered_map<std::uint32_t, std::list<LoopRecord>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

class VerificationCache {
 public:
  explicit VerificationCache(std::uint32_t max_entries)
      : max_entries_(max_entries) {}

  void Clear() { entries_.clear(); overflowed_ = false; }

  // Stores one data address; returns false (and flags overflow) when full.
  bool Store(std::uint32_t addr) {
    ++accesses_;
    if (entries_.size() >= max_entries_) {
      overflowed_ = true;
      return false;
    }
    entries_.push_back(addr);
    return true;
  }

  [[nodiscard]] bool Contains(std::uint32_t addr) const {
    for (const std::uint32_t a : entries_) {
      if (a == addr) return true;
    }
    return false;
  }

  [[nodiscard]] bool overflowed() const { return overflowed_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }

 private:
  std::uint32_t max_entries_;
  std::vector<std::uint32_t> entries_;
  bool overflowed_ = false;
  std::uint64_t accesses_ = 0;
};

}  // namespace dsa::engine
