// The DSA's two private memories (Fig. 9):
//  - DSA Cache: loop ID -> LoopRecord for previously analyzed loops
//    (vectorizable or known non-vectorizable), LRU-replaced, 8 kB.
//  - Verification Cache: the data addresses observed during the Data
//    Collection stage, 1 kB; overflowing it aborts the analysis.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "engine/config.h"
#include "engine/loop_info.h"
#include "trace/trace.h"

namespace dsa::engine {

// Integrity seal over a record's payload (every field that drives a
// takeover; excludes the checksum slot itself). Insert/Reseal stamp it;
// guarded lookups validate it.
[[nodiscard]] std::uint64_t ChecksumOf(const LoopRecord& rec);

class DsaCache {
 public:
  explicit DsaCache(std::uint32_t max_entries) : max_entries_(max_entries) {}

  // Optional execution tracer; hits/misses/inserts/evictions are emitted
  // as cache events when set.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Guarded mode (fault-injected runs): every lookup validates the
  // record's checksum and a mismatch drops the entry — counted into
  // `*counter` and reported as a kCacheCorruption trace event — so a
  // corrupted record degrades to a re-analysis instead of driving a
  // takeover from garbage.
  void set_validate(bool on) { validate_ = on; }
  void set_corruption_counter(std::uint64_t* counter) {
    corruptions_ = counter;
  }

  // Returns nullptr on miss. A hit refreshes LRU position.
  [[nodiscard]] const LoopRecord* Lookup(std::uint32_t loop_id);
  [[nodiscard]] LoopRecord* LookupMutable(std::uint32_t loop_id);

  // Inserts or replaces; evicts the LRU record when full. Seals the
  // stored copy's checksum.
  void Insert(const LoopRecord& rec);

  // Re-stamps the checksum after an in-place mutation through
  // LookupMutable. Required in guarded mode; harmless otherwise.
  void Reseal(std::uint32_t loop_id);

  // True when a record for `loop_id` exists (no LRU refresh, no counters).
  [[nodiscard]] bool Contains(std::uint32_t loop_id) const {
    return map_.count(loop_id) != 0;
  }

  // Fault-injection hook: XORs `payload` into the stored record's
  // speculative/addressing fields without resealing, so the next guarded
  // lookup sees a corrupted entry. No-op when the record is absent.
  void Corrupt(std::uint32_t loop_id, std::uint64_t payload);

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t accesses() const { return hits_ + misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  std::uint32_t max_entries_;
  trace::Tracer* tracer_ = nullptr;
  bool validate_ = false;
  std::uint64_t* corruptions_ = nullptr;
  std::list<LoopRecord> lru_;  // front = most recent
  std::unordered_map<std::uint32_t, std::list<LoopRecord>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

class VerificationCache {
 public:
  explicit VerificationCache(std::uint32_t max_entries)
      : max_entries_(max_entries) {}

  void Clear() { entries_.clear(); overflowed_ = false; }

  // Stores one data address; returns false (and flags overflow) when full.
  bool Store(std::uint32_t addr) {
    ++accesses_;
    if (entries_.size() >= max_entries_) {
      overflowed_ = true;
      return false;
    }
    entries_.push_back(addr);
    return true;
  }

  [[nodiscard]] bool Contains(std::uint32_t addr) const {
    for (const std::uint32_t a : entries_) {
      if (a == addr) return true;
    }
    return false;
  }

  [[nodiscard]] bool overflowed() const { return overflowed_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }

 private:
  std::uint32_t max_entries_;
  std::vector<std::uint32_t> entries_;
  bool overflowed_ = false;
  std::uint64_t accesses_ = 0;
};

}  // namespace dsa::engine
