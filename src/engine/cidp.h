// Cross-Iteration Dependency Prediction (Section 4.4, equations 4.1-4.5).
//
// With affine streams, the address a load reads at iteration k is
//   MRead[k] = MRead[2] + MGap * (k - 2),   MGap = |MRead[3] - MRead[2]|
// (the paper folds direction into the interval test; we keep the signed
// stride and normalize the interval). A store performed at iteration 2 at
// MWrite[2] collides with a future read iff MWrite[2] lies inside
// [MRead[3], MRead[last]] — then the loop has a cross-iteration dependency
// (CID); otherwise it does not (NCID).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "engine/loop_info.h"
#include "trace/trace.h"

namespace dsa::engine {

struct CidpResult {
  bool has_dependency = false;
  // Earliest future iteration (1-based loop iteration index, >= 3) whose
  // predicted read address equals a second-iteration write address. Only
  // meaningful when has_dependency. Drives partial vectorization (Fig. 14).
  std::int64_t dependent_iteration = 0;
  // Dependency distance in iterations between the writing and the reading
  // iteration; the safe partial-vectorization window size.
  std::int64_t distance = 0;
};

// Tests one (read stream, write address from iteration 2) pair over a loop
// expected to run `last_iteration` iterations in total (iterations are
// 1-based as in the dissertation's figures).
[[nodiscard]] CidpResult PredictPair(std::uint32_t read_addr_iter2,
                                     std::int64_t read_stride,
                                     std::uint32_t write_addr_iter2,
                                     std::int64_t last_iteration);

// Applies the prediction across all load/store stream pairs of a body.
// Also catches write-write conflicts onto a later-read location via the
// same interval logic on store streams against load streams.
[[nodiscard]] CidpResult PredictBody(const BodySummary& body,
                                     std::int64_t last_iteration);

// PredictBody plus a kCidpVerdict trace event (arg0 = has_dependency,
// arg1 = dependency distance) when `tracer` is non-null. All engine and
// tracker prediction sites go through this wrapper so every CID/NCID
// verdict of a traced run is visible in the event stream.
[[nodiscard]] CidpResult PredictBodyTraced(const BodySummary& body,
                                           std::int64_t last_iteration,
                                           trace::Tracer* tracer,
                                           std::uint32_t loop_id);

}  // namespace dsa::engine
