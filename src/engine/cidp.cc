#include "engine/cidp.h"

#include <algorithm>
#include <cstdlib>

namespace dsa::engine {

CidpResult PredictPair(std::uint32_t read_addr_iter2, std::int64_t read_stride,
                       std::uint32_t write_addr_iter2,
                       std::int64_t last_iteration) {
  CidpResult res;
  if (last_iteration < 3) return res;

  const std::int64_t r2 = read_addr_iter2;
  const std::int64_t w2 = write_addr_iter2;
  const std::int64_t r3 = r2 + read_stride;
  const std::int64_t r_last = r2 + read_stride * (last_iteration - 2);
  const std::int64_t lo = std::min(r3, r_last);
  const std::int64_t hi = std::max(r3, r_last);

  if (w2 < lo || w2 > hi) return res;  // Equation 4.3: NCID

  // Equation 4.2: the write of iteration 2 falls inside the predicted
  // read window. Locate the colliding iteration for partial vectorization.
  if (read_stride == 0) {
    res.has_dependency = true;
    res.dependent_iteration = 3;
    res.distance = 1;
    return res;
  }
  const std::int64_t delta = w2 - r2;
  std::int64_t k = delta / read_stride;  // iterations past iteration 2
  if (delta % read_stride != 0) {
    // Byte-partial overlap within a stride step: conservative CID at the
    // enclosing step.
    k = delta >= 0 ? k : k - 1;
    if (k < 1) k = 1;
  }
  res.has_dependency = true;
  res.dependent_iteration = 2 + k;
  res.distance = k;
  return res;
}

CidpResult PredictBody(const BodySummary& body, std::int64_t last_iteration) {
  CidpResult worst;
  for (const MemStream& w : body.stores) {
    for (const MemStream& r : body.loads) {
      const CidpResult p =
          PredictPair(r.base_addr, r.stride, w.base_addr, last_iteration);
      if (p.has_dependency &&
          (!worst.has_dependency ||
           p.dependent_iteration < worst.dependent_iteration)) {
        worst = p;
      }
    }
    // Write-after-write onto another store stream's future location also
    // forbids reordering the lanes of a speculative vector store.
    for (const MemStream& w2 : body.stores) {
      if (&w2 == &w) continue;
      const CidpResult p =
          PredictPair(w2.base_addr, w2.stride, w.base_addr, last_iteration);
      if (p.has_dependency &&
          (!worst.has_dependency ||
           p.dependent_iteration < worst.dependent_iteration)) {
        worst = p;
      }
    }
  }
  return worst;
}

CidpResult PredictBodyTraced(const BodySummary& body,
                             std::int64_t last_iteration,
                             trace::Tracer* tracer, std::uint32_t loop_id) {
  const CidpResult res = PredictBody(body, last_iteration);
  if (tracer) {
    tracer->Emit(trace::EventKind::kCidpVerdict, loop_id,
                 res.has_dependency ? 1 : 0,
                 static_cast<std::uint64_t>(res.distance));
  }
  return res;
}

}  // namespace dsa::engine
