// Register use/def extraction for scalar instructions, used by the DSA
// analysis to detect carry-around scalars (Table 1, line 5) and to compute
// the stop-condition backward slice of sentinel loops.
#pragma once

#include <array>
#include <cstdint>

#include "isa/instruction.h"

namespace dsa::engine {

struct RegUse {
  std::array<int, 3> srcs{-1, -1, -1};
  int n_srcs = 0;
  int dst = -1;        // main destination register, -1 if none
  int post_inc_reg = -1;  // base register updated by post-increment
};

[[nodiscard]] RegUse UsesOf(const isa::Instruction& ins);

}  // namespace dsa::engine
