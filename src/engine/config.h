// Configuration of the Dynamic SIMD Assembler, mirroring Table 4 of the
// dissertation (DSA Cache 8 kB, Verification Cache 1 kB, 4 Array Maps of
// 128 bit) plus the latency knobs enumerated in the methodology chapter
// (DSA cache access, VC access, array-map access, partial-vectorization
// re-analysis, pipeline flush, vector load/store and leftover latencies).
#pragma once

#include <cstdint>

namespace dsa::engine {

struct DsaConfig {
  // --- structures ----------------------------------------------------------
  std::uint32_t dsa_cache_bytes = 8 * 1024;
  std::uint32_t dsa_cache_entry_bytes = 32;  // per stored loop record
  std::uint32_t verification_cache_bytes = 1024;
  std::uint32_t verification_entry_bytes = 4;  // one data address
  std::uint32_t array_maps = 4;        // 128-bit registers for cond. loops
  std::uint32_t neon_regs = 16;        // Q0..Q15 available to speculation
  std::uint32_t trace_capacity = 4096; // dynamic body instructions per iter

  // --- feature set ---------------------------------------------------------
  // Original DSA (Article 1): count/function/inner-outer loops only.
  // Extended DSA (Articles 2-3): adds the dynamic-behaviour loops.
  bool enable_conditional_loops = true;
  bool enable_sentinel_loops = true;
  bool enable_dynamic_range_loops = true;
  bool enable_partial_vectorization = true;
  // Inner/outer loop fusion (Fig. 17); ablation knob.
  bool enable_loop_fusion = true;
  // Cross-iteration dependency prediction; disabling it falls back to
  // comparing only observed addresses (ablation).
  bool enable_cidp = true;

  // --- latencies (cycles) ---------------------------------------------------
  std::uint32_t pipeline_flush_latency = 12;  // drain O3 pipe on takeover
  std::uint32_t dsa_cache_access_latency = 2;
  std::uint32_t verification_cache_access_latency = 1;
  std::uint32_t array_map_access_latency = 1;
  std::uint32_t partial_window_resync_latency = 6;
  std::uint32_t speculative_select_latency = 2;  // vector-map result select

  // --- speculation guard (misspeculation recovery) --------------------------
  // Rollbacks of the same loop before its PC is blacklisted in the DSA
  // cache and the system degrades to pure scalar execution of that loop.
  std::uint32_t blacklist_strikes = 3;
  // Extra cycles a detected misspeculation costs on top of the pipeline
  // flush (squash + architectural-state restore from the checkpoint).
  std::uint32_t rollback_penalty = 24;
  // Iterations of slack added to the store-undo log's speculative bound so
  // sentinel overruns stay inside the restorable (and cross-checked) range.
  std::uint32_t guard_margin_iterations = 16;

  [[nodiscard]] std::uint32_t dsa_cache_entries() const {
    return dsa_cache_bytes / dsa_cache_entry_bytes;
  }
  [[nodiscard]] std::uint32_t verification_cache_entries() const {
    return verification_cache_bytes / verification_entry_bytes;
  }

  // Article 1 configuration: the original DSA without dynamic-behaviour
  // loop support.
  [[nodiscard]] static DsaConfig Original() {
    DsaConfig c;
    c.enable_conditional_loops = false;
    c.enable_sentinel_loops = false;
    c.enable_dynamic_range_loops = false;
    c.enable_partial_vectorization = false;
    return c;
  }

  // Articles 2/3 configuration: all loop classes enabled.
  [[nodiscard]] static DsaConfig Extended() { return DsaConfig{}; }
};

}  // namespace dsa::engine
