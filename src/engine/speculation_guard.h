// SpeculationGuard: checkpoint/cross-check/rollback protection around DSA
// takeovers, active only on fault-injected runs. Before the covered region
// executes, Arm() checkpoints the architectural state (registers, vector
// file, and the store footprint of the plan — or the whole memory image
// when the footprint cannot be bounded). After the covered run,
// CheckAfterCovered() fires the guard-stage faults (wrong-lane select,
// sentinel overrun, NEON lane bit-flip, wild stream pointer), applies
// their corruptions to the live state, and cross-checks a digest of the
// speculatively produced state against the scalar reference — which is the
// pre-corruption state itself, because covered execution is functionally
// scalar (the paper's trace-level methodology). A mismatch means the
// modeled vector hardware diverged: the caller rolls back to the
// checkpoint, charges the misspeculation penalty through
// DsaEngine::RecordRollback, and re-executes the loop scalar.
//
// docs/FAULTS.md documents the fault model and the recovery guarantees.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/cpu.h"
#include "engine/config.h"
#include "engine/engine.h"
#include "fault/fault.h"
#include "trace/trace.h"

namespace dsa::engine {

class SpeculationGuard {
 public:
  SpeculationGuard(const DsaConfig& cfg, fault::FaultInjector& injector,
                   trace::Tracer* tracer)
      : cfg_(cfg), injector_(injector), tracer_(tracer) {}

  // Checkpoints the architectural state for `plan`'s covered run: a copy
  // of the CPU state plus a store-undo log over the plan's store streams,
  // sized for max(expected, max) iterations plus the guard margin. Plans
  // whose footprint cannot be bounded (fused nests, function-call bodies,
  // fresh takeovers with stale stream bases, unknown trip counts) fall
  // back to a full memory snapshot.
  void Arm(const engine::TakeoverPlan& plan, cpu::Cpu& cpu);

  // Fires the guard-stage faults for this takeover, applies the resulting
  // corruptions to the live state, and returns true when the corrupted
  // state diverges from the scalar reference (=> the caller must Rollback
  // and re-execute scalar). Also diverges when the plan carried a forced
  // CIDP misprediction. Must be called exactly once per armed plan.
  [[nodiscard]] bool CheckAfterCovered(const engine::TakeoverPlan& plan,
                                       cpu::Cpu& cpu,
                                       std::uint64_t covered_iterations);

  // Restores the checkpoint taken by Arm(): CPU state and either the undo
  // ranges or the full memory image.
  void Rollback(cpu::Cpu& cpu);

  [[nodiscard]] bool armed() const { return armed_; }

 private:
  struct UndoRange {
    std::uint32_t lo = 0;
    std::vector<std::uint8_t> saved;
  };

  [[nodiscard]] std::uint64_t DigestState(const cpu::Cpu& cpu) const;
  void ApplyFaults(const engine::TakeoverPlan& plan, cpu::Cpu& cpu,
                   std::uint64_t covered_iterations);
  // Corruption appliers; every site they touch is inside the digest's and
  // the checkpoint's coverage, so detection and recovery are guaranteed.
  void CorruptFootprint(cpu::Cpu& cpu, std::uint64_t payload, bool at_end);
  void CorruptVregBit(cpu::Cpu& cpu, std::uint64_t payload);
  void CorruptStreamPointer(const engine::TakeoverPlan& plan, cpu::Cpu& cpu,
                            std::uint64_t payload);
  void EmitFault(fault::FaultKind kind, std::uint32_t loop_id);

  DsaConfig cfg_;
  fault::FaultInjector& injector_;
  trace::Tracer* tracer_ = nullptr;

  bool armed_ = false;
  bool snapshot_ = false;
  std::uint64_t bound_iterations_ = 0;
  cpu::CpuState checkpoint_;
  std::vector<UndoRange> undo_;
  std::vector<std::uint8_t> mem_snapshot_;
};

}  // namespace dsa::engine
