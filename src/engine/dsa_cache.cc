#include "engine/dsa_cache.h"

namespace dsa::engine {

const LoopRecord* DsaCache::Lookup(std::uint32_t loop_id) {
  return LookupMutable(loop_id);
}

LoopRecord* DsaCache::LookupMutable(std::uint32_t loop_id) {
  const auto it = map_.find(loop_id);
  if (it == map_.end()) {
    ++misses_;
    if (tracer_) tracer_->Emit(trace::EventKind::kCacheMiss, loop_id);
    return nullptr;
  }
  ++hits_;
  if (tracer_) tracer_->Emit(trace::EventKind::kCacheHit, loop_id);
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

void DsaCache::Insert(const LoopRecord& rec) {
  const auto it = map_.find(rec.loop_id);
  if (it != map_.end()) {
    *it->second = rec;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (tracer_) {
      tracer_->Emit(trace::EventKind::kCacheInsert, rec.loop_id,
                    static_cast<std::uint64_t>(rec.cls));
    }
    return;
  }
  if (map_.size() >= max_entries_ && !lru_.empty()) {
    const std::uint32_t victim = lru_.back().loop_id;
    map_.erase(victim);
    lru_.pop_back();
    ++evictions_;
    if (tracer_) tracer_->Emit(trace::EventKind::kCacheEvict, victim);
  }
  lru_.push_front(rec);
  map_[rec.loop_id] = lru_.begin();
  if (tracer_) {
    tracer_->Emit(trace::EventKind::kCacheInsert, rec.loop_id,
                  static_cast<std::uint64_t>(rec.cls));
  }
}

}  // namespace dsa::engine
