#include "engine/dsa_cache.h"

namespace dsa::engine {

const LoopRecord* DsaCache::Lookup(std::uint32_t loop_id) {
  return LookupMutable(loop_id);
}

LoopRecord* DsaCache::LookupMutable(std::uint32_t loop_id) {
  const auto it = map_.find(loop_id);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

void DsaCache::Insert(const LoopRecord& rec) {
  const auto it = map_.find(rec.loop_id);
  if (it != map_.end()) {
    *it->second = rec;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= max_entries_ && !lru_.empty()) {
    map_.erase(lru_.back().loop_id);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(rec);
  map_[rec.loop_id] = lru_.begin();
}

}  // namespace dsa::engine
