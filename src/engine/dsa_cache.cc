#include "engine/dsa_cache.h"

namespace dsa::engine {

namespace {

void Mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

void MixStreams(std::uint64_t& h, const std::vector<MemStream>& streams) {
  Mix(h, streams.size());
  for (const MemStream& s : streams) {
    Mix(h, s.pc);
    Mix(h, s.is_write ? 1 : 0);
    Mix(h, s.elem_bytes);
    Mix(h, s.base_addr);
    Mix(h, static_cast<std::uint64_t>(s.stride));
    Mix(h, s.loop_invariant ? 1 : 0);
    Mix(h, static_cast<std::uint64_t>(s.addr_reg));
    Mix(h, static_cast<std::uint64_t>(s.addr_offset));
  }
}

}  // namespace

std::uint64_t ChecksumOf(const LoopRecord& rec) {
  std::uint64_t h = 0x6b6f6f6c2d696421ull;
  Mix(h, rec.loop_id);
  Mix(h, static_cast<std::uint64_t>(rec.cls));
  Mix(h, static_cast<std::uint64_t>(rec.reject));
  Mix(h, rec.body.start_pc);
  Mix(h, rec.body.latch_pc);
  Mix(h, static_cast<std::uint64_t>(rec.body.vec_type));
  Mix(h, rec.body.alu_ops);
  Mix(h, rec.body.mul_ops);
  Mix(h, rec.body.body_instrs);
  Mix(h, rec.body.scalar_per_iter);
  Mix(h, rec.body.has_function_call ? 1 : 0);
  Mix(h, rec.body.conditions.size());
  Mix(h, rec.body.code.size());
  MixStreams(h, rec.body.loads);
  MixStreams(h, rec.body.stores);
  Mix(h, static_cast<std::uint64_t>(rec.induction_reg));
  Mix(h, static_cast<std::uint64_t>(rec.induction_delta));
  Mix(h, static_cast<std::uint64_t>(rec.limit_reg));
  Mix(h, static_cast<std::uint64_t>(rec.limit_imm));
  Mix(h, static_cast<std::uint64_t>(rec.latch_cond));
  Mix(h, static_cast<std::uint64_t>(rec.latch_cmp_rn));
  Mix(h, static_cast<std::uint64_t>(rec.latch_cmp_rm));
  Mix(h, static_cast<std::uint64_t>(rec.latch_cmp_imm));
  Mix(h, rec.latch_cmp_is_imm ? 1 : 0);
  Mix(h, static_cast<std::uint64_t>(rec.latch_diff_delta));
  Mix(h, rec.speculative_range);
  Mix(h, static_cast<std::uint64_t>(rec.dep_distance));
  Mix(h, rec.fused_outer ? 1 : 0);
  Mix(h, rec.inner_latch_pc);
  return h;
}

const LoopRecord* DsaCache::Lookup(std::uint32_t loop_id) {
  return LookupMutable(loop_id);
}

LoopRecord* DsaCache::LookupMutable(std::uint32_t loop_id) {
  const auto it = map_.find(loop_id);
  if (it == map_.end()) {
    ++misses_;
    if (tracer_) tracer_->Emit(trace::EventKind::kCacheMiss, loop_id);
    return nullptr;
  }
  if (validate_ && it->second->checksum != ChecksumOf(*it->second)) {
    // Corrupted or aliased entry: drop it and report a miss so the engine
    // re-analyzes the loop from scratch instead of speculating on garbage.
    if (corruptions_ != nullptr) ++*corruptions_;
    if (tracer_) tracer_->Emit(trace::EventKind::kCacheCorruption, loop_id);
    lru_.erase(it->second);
    map_.erase(it);
    ++misses_;
    if (tracer_) tracer_->Emit(trace::EventKind::kCacheMiss, loop_id);
    return nullptr;
  }
  ++hits_;
  if (tracer_) tracer_->Emit(trace::EventKind::kCacheHit, loop_id);
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

void DsaCache::Insert(const LoopRecord& rec) {
  const auto it = map_.find(rec.loop_id);
  if (it != map_.end()) {
    *it->second = rec;
    it->second->checksum = ChecksumOf(*it->second);
    lru_.splice(lru_.begin(), lru_, it->second);
    if (tracer_) {
      tracer_->Emit(trace::EventKind::kCacheInsert, rec.loop_id,
                    static_cast<std::uint64_t>(rec.cls));
    }
    return;
  }
  if (map_.size() >= max_entries_ && !lru_.empty()) {
    const std::uint32_t victim = lru_.back().loop_id;
    map_.erase(victim);
    lru_.pop_back();
    ++evictions_;
    if (tracer_) tracer_->Emit(trace::EventKind::kCacheEvict, victim);
  }
  lru_.push_front(rec);
  lru_.front().checksum = ChecksumOf(lru_.front());
  map_[rec.loop_id] = lru_.begin();
  if (tracer_) {
    tracer_->Emit(trace::EventKind::kCacheInsert, rec.loop_id,
                  static_cast<std::uint64_t>(rec.cls));
  }
}

void DsaCache::Reseal(std::uint32_t loop_id) {
  const auto it = map_.find(loop_id);
  if (it != map_.end()) it->second->checksum = ChecksumOf(*it->second);
}

void DsaCache::Corrupt(std::uint32_t loop_id, std::uint64_t payload) {
  const auto it = map_.find(loop_id);
  if (it == map_.end()) return;
  LoopRecord& rec = *it->second;
  // Hit the fields a real bit-flip would silently poison a takeover with:
  // the speculative window and a stream base address.
  rec.speculative_range ^= static_cast<std::uint32_t>(payload);
  if (!rec.body.loads.empty()) {
    rec.body.loads.front().base_addr ^=
        static_cast<std::uint32_t>(payload >> 32);
  }
}

}  // namespace dsa::engine
