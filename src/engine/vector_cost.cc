#include "engine/vector_cost.h"

#include <algorithm>

namespace dsa::engine {

std::string_view ToString(LeftoverKind k) {
  switch (k) {
    case LeftoverKind::kNone: return "none";
    case LeftoverKind::kSingleElements: return "single-elements";
    case LeftoverKind::kOverlapping: return "overlapping";
    case LeftoverKind::kLargerArrays: return "larger-arrays";
  }
  return "?";
}

LeftoverKind ChooseLeftover(const BodySummary& body, std::uint64_t iterations,
                            bool padded_buffers) {
  const std::uint64_t lanes = body.lanes();
  if (iterations % lanes == 0) return LeftoverKind::kNone;
  if (padded_buffers) return LeftoverKind::kLargerArrays;
  if (iterations < lanes) return LeftoverKind::kSingleElements;
  // Overlapping re-executes a full vector over already-computed elements;
  // safe only when no store stream aliases a load stream (Section 4.8.2).
  for (const MemStream& s : body.stores) {
    for (const MemStream& l : body.loads) {
      if (s.base_addr == l.base_addr && s.stride == l.stride) {
        return LeftoverKind::kSingleElements;
      }
    }
  }
  return LeftoverKind::kOverlapping;
}

std::uint64_t ChunkCycles(const BodySummary& body, const neon::NeonTiming& t) {
  std::uint64_t c = 0;
  for (const MemStream& l : body.loads) {
    if (!l.loop_invariant) c += t.mem_latency;
  }
  c += static_cast<std::uint64_t>(body.alu_ops) * t.alu_latency;
  c += static_cast<std::uint64_t>(body.mul_ops) * t.mul_latency;
  c += static_cast<std::uint64_t>(body.stores.size()) * t.mem_latency;
  return c;
}

std::uint64_t ChunkInstrs(const BodySummary& body) {
  std::uint64_t n = 0;
  for (const MemStream& l : body.loads) {
    if (!l.loop_invariant) ++n;
  }
  return n + body.alu_ops + body.mul_ops + body.stores.size();
}

namespace {

// Residual scalar work per covered iteration (induction + latch for count
// loops; plus condition/stop slices handled by the per-class costers).
RegionCost ScalarAddback(std::uint64_t iterations, std::uint32_t per_iter,
                         std::uint32_t width) {
  RegionCost c;
  c.scalar_instrs = iterations * per_iter;
  c.scalar_addback_cycles = (c.scalar_instrs + width - 1) / width;
  return c;
}

RegionCost LeftoverCost(const BodySummary& body, std::uint64_t leftover,
                        LeftoverKind kind, const neon::NeonTiming& t) {
  RegionCost c;
  if (leftover == 0 || kind == LeftoverKind::kNone ||
      kind == LeftoverKind::kLargerArrays) {
    // Larger Arrays: the tail became one more full chunk, priced by caller.
    return c;
  }
  if (kind == LeftoverKind::kOverlapping) {
    c.neon_busy_cycles = ChunkCycles(body, t);
    c.vector_instrs = ChunkInstrs(body);
    return c;
  }
  // Single elements: per-lane load/op/store on the NEON element datapath.
  const std::uint64_t per_elem_instrs =
      body.loads.size() + body.alu_ops + body.mul_ops + body.stores.size();
  c.vector_instrs = leftover * per_elem_instrs;
  c.neon_busy_cycles =
      leftover * (body.loads.size() * t.lane_move +
                  body.alu_ops * t.alu_latency + body.mul_ops * t.mul_latency +
                  body.stores.size() * t.lane_move);
  return c;
}

// Broadcast of loop-invariant operands into vector registers, once per
// vectorized region.
RegionCost InvariantSetup(const BodySummary& body, const neon::NeonTiming& t) {
  RegionCost c;
  for (const MemStream& l : body.loads) {
    if (l.loop_invariant) {
      ++c.vector_instrs;  // vdup
      c.neon_busy_cycles += t.alu_latency;
    }
  }
  return c;
}

}  // namespace

RegionCost CostCountLoop(const BodySummary& body, std::uint64_t iterations,
                         const DsaConfig& cfg, const neon::NeonTiming& t,
                         std::uint32_t width) {
  RegionCost c;
  const std::uint64_t lanes = body.lanes();
  const LeftoverKind lk = ChooseLeftover(body, iterations);
  std::uint64_t chunks = iterations / lanes;
  const std::uint64_t leftover = iterations % lanes;
  if (lk == LeftoverKind::kOverlapping && leftover != 0) {
    // The overlapping chunk replaces the tail; priced in LeftoverCost.
  } else if (lk == LeftoverKind::kLargerArrays && leftover != 0) {
    ++chunks;
  }

  c.overhead_cycles = cfg.pipeline_flush_latency + t.pipeline_fill;
  c.neon_busy_cycles = chunks * ChunkCycles(body, t);
  c.vector_instrs = chunks * ChunkInstrs(body);
  c += InvariantSetup(body, t);
  c += LeftoverCost(body, leftover, lk, t);
  // The vectorized loop still executes one chunk-advance + compare +
  // branch per chunk on the scalar side.
  c += ScalarAddback(chunks, 2, width);
  return c;
}

RegionCost CostConditionalLoop(const BodySummary& body,
                               std::uint64_t iterations, const DsaConfig& cfg,
                               const neon::NeonTiming& t, std::uint32_t width) {
  RegionCost c;
  const std::uint64_t lanes = body.lanes();
  const std::uint64_t chunks = (iterations + lanes - 1) / lanes;

  c.overhead_cycles = cfg.pipeline_flush_latency + t.pipeline_fill;

  // Every discovered condition is vectorized once over the remaining range
  // on its first dynamic occurrence (Fig. 21): its loads and ops run for
  // all chunks; results land in Array Maps.
  for (const CondRegion& cond : body.conditions) {
    const std::uint64_t per_chunk =
        cond.mem_streams * t.mem_latency + cond.vector_ops * t.alu_latency;
    c.neon_busy_cycles += chunks * per_chunk;
    c.vector_instrs += chunks * (cond.mem_streams + cond.vector_ops);
    c.array_map_accesses += chunks;
  }
  // The always-executed portion of the body is vectorized normally.
  c.neon_busy_cycles += chunks * ChunkCycles(body, t);
  c.vector_instrs += chunks * ChunkInstrs(body);
  c += InvariantSetup(body, t);

  // Per iteration, the condition-evaluation chain runs scalar and its taken
  // branch is mapped into the Vector Map (Mapping stage).
  c += ScalarAddback(iterations, body.scalar_per_iter, width);
  c.array_map_accesses += iterations;

  // Speculative select of the mapped results at every chunk boundary.
  c.overhead_cycles += chunks * cfg.speculative_select_latency;
  c.neon_busy_cycles +=
      chunks * body.conditions.size() * t.alu_latency;  // vbsl merges
  c.vector_instrs += chunks * body.conditions.size();
  return c;
}

RegionCost CostSentinelLoop(const BodySummary& body,
                            std::uint64_t covered_iterations,
                            std::uint64_t speculative_range,
                            const DsaConfig& cfg, const neon::NeonTiming& t,
                            std::uint32_t width) {
  RegionCost c;
  const std::uint64_t lanes = body.lanes();
  // The DSA allocates vector work for the full speculative range even when
  // the loop stops earlier; overshoot lanes are computed and discarded.
  const std::uint64_t worked =
      std::max<std::uint64_t>(covered_iterations, speculative_range);
  const std::uint64_t chunks = (worked + lanes - 1) / lanes;

  c.overhead_cycles = cfg.pipeline_flush_latency + t.pipeline_fill +
                      cfg.speculative_select_latency;
  c.neon_busy_cycles = chunks * ChunkCycles(body, t);
  c.vector_instrs = chunks * ChunkInstrs(body);
  c += InvariantSetup(body, t);

  // The stop-condition slice executes scalar on every real iteration.
  c += ScalarAddback(covered_iterations, body.scalar_per_iter, width);
  return c;
}

RegionCost CostPartialLoop(const BodySummary& body, std::uint64_t iterations,
                           std::uint64_t window, const DsaConfig& cfg,
                           const neon::NeonTiming& t, std::uint32_t width) {
  RegionCost c;
  if (window == 0) return c;
  const std::uint64_t windows = (iterations + window - 1) / window;
  c.overhead_cycles = cfg.pipeline_flush_latency + t.pipeline_fill +
                      windows * cfg.partial_window_resync_latency;
  for (std::uint64_t w = 0; w < windows; ++w) {
    const std::uint64_t n =
        std::min<std::uint64_t>(window, iterations - w * window);
    const std::uint64_t lanes = body.lanes();
    const std::uint64_t chunks = n / lanes;
    const std::uint64_t leftover = n % lanes;
    c.neon_busy_cycles += chunks * ChunkCycles(body, t);
    c.vector_instrs += chunks * ChunkInstrs(body);
    // Windows rarely land on lane boundaries; leftovers go single-element
    // (overlapping would cross the dependency fence).
    c += LeftoverCost(body, leftover, LeftoverKind::kSingleElements, t);
    c += ScalarAddback(chunks + (leftover != 0 ? 1 : 0), 2, width);
  }
  c += InvariantSetup(body, t);
  return c;
}

}  // namespace dsa::engine
