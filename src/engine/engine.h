// DsaEngine: the Dynamic SIMD Assembler attached to the CPU's retired
// instruction stream (Fig. 9 / Fig. 10). While the ARM core executes, the
// engine probes for vectorizable loops in parallel (Scenario 1); when a
// loop is verified, it returns a TakeoverPlan and the system switches to
// NEON execution of the remaining iterations (Scenario 2).
//
// Functional execution of covered iterations stays on the scalar
// interpreter — exactly the paper's trace-level methodology, where "the
// timing model replaces the scalar vectorizable instructions by vector
// instructions". FinishTakeover() performs that replacement.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cpu/cpu.h"
#include "engine/config.h"
#include "engine/dsa_cache.h"
#include "engine/stats.h"
#include "engine/tracker.h"
#include "engine/vector_cost.h"
#include "fault/fault.h"
#include "trace/trace.h"

namespace dsa::engine {

struct TakeoverPlan {
  LoopRecord record;  // the vectorized loop (the inner loop when fused)
  // Upper bound on covered iterations; 0 = run until the loop exits.
  // Sentinel loops bound coverage by the speculative range.
  std::uint64_t max_iterations = 0;
  bool from_cache = false;
  // Coverage region: [coverage_start, coverage_latch] is where the scalar
  // core is suspended; `count_latch` is the branch whose taken retires
  // count vectorized iterations. For plain loops all three equal the
  // record body's range; a fused outer loop covers the whole nest.
  std::uint32_t coverage_start = 0;
  std::uint32_t coverage_latch = 0;
  std::uint32_t count_latch = 0;
  // Best estimate of the covered iteration count at takeover time (trip
  // count for count/DRL loops, speculative window for sentinels); 0 when
  // unknown (fresh takeovers). The speculation guard sizes its store-undo
  // log from this.
  std::uint64_t expected_iterations = 0;
  // Fault injection: a forced CIDP misprediction fired on this plan, so
  // the vectorized execution is semantically wrong and the guard must
  // detect a divergence and roll back.
  bool forced_misprediction = false;
};

class DsaEngine {
 public:
  DsaEngine(const DsaConfig& cfg, const cpu::TimingConfig& timing);

  // Feeds one retired instruction (DSA probing mode). Returns a takeover
  // plan when a loop just became ready for NEON execution; the caller must
  // then run the covered region and call FinishTakeover().
  std::optional<TakeoverPlan> Observe(const cpu::Retired& r,
                                      const cpu::CpuState& state);

  // Applies the timing-model replacement for a covered region:
  // `covered_iterations` loop iterations whose `covered_scalar_instrs`
  // scalar instructions were removed from the timing by the caller.
  void FinishTakeover(const TakeoverPlan& plan,
                      std::uint64_t covered_iterations,
                      std::uint64_t covered_scalar_instrs, cpu::Cpu& cpu,
                      std::uint64_t glue_instrs = 0);

  // Called when a fused covered run met a store in the glue: the outer
  // record loses its fusion and is cooled down, so future entries fall
  // back to per-inner-loop takeovers.
  void DemoteFusion(std::uint32_t outer_latch_pc);

  [[nodiscard]] const DsaStats& stats() const { return stats_; }
  [[nodiscard]] const DsaCache& cache() const { return dsa_cache_; }
  [[nodiscard]] const DsaConfig& config() const { return cfg_; }

  // Attaches an execution tracer (nullptr detaches). The engine, its
  // caches and all trackers created afterwards emit events into it; the
  // caller keeps ownership and must outlive the engine or detach first.
  void set_tracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    dsa_cache_.set_tracer(tracer);
  }
  [[nodiscard]] trace::Tracer* tracer() const { return tracer_; }

  // Forces the original per-retire bookkeeping in Observe() (no idle
  // shortcut, no cooldown-scan skip); stats are identical either way.
  void set_reference_path(bool ref) { reference_path_ = ref; }

  // Attaches a fault injector (nullptr detaches). While attached the DSA
  // cache runs in guarded mode (checksum validation + corruption counter)
  // and the engine fires cidp/cache faults at their trigger sites; the
  // caller keeps ownership.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
    dsa_cache_.set_validate(injector != nullptr);
    dsa_cache_.set_corruption_counter(
        injector != nullptr ? &stats_.cache_corruptions_detected : nullptr);
  }
  [[nodiscard]] fault::FaultInjector* fault_injector() const {
    return injector_;
  }

  // Called by the system when the speculation guard detected a divergence
  // after the covered run: counts the rollback, charges the squash+restore
  // penalty, records a strike against the loop PC and — after
  // cfg.blacklist_strikes strikes — blacklists it so every later encounter
  // executes purely scalar. Replaces FinishTakeover for the failed plan.
  void RecordRollback(const TakeoverPlan& plan, cpu::Cpu& cpu);

  [[nodiscard]] bool IsBlacklisted(std::uint32_t loop_id) const {
    return blacklist_.count(loop_id) != 0;
  }

  // Batched-observation interface (sim::Run's DSA fast loop). While idle()
  // — no tracker in flight — the only retires Observe() can react to are
  // backward conditional branches, plus, when has_cooldowns(), any pc
  // outside [cooldown_window_lo, cooldown_window_hi). Every other retire
  // is provably inert and may be executed unobserved, credited afterwards
  // through ObserveSkipped() so observed_instructions stays exact.
  [[nodiscard]] bool idle() const { return trackers_.empty(); }
  [[nodiscard]] bool has_cooldowns() const { return !cooldowns_.empty(); }
  [[nodiscard]] std::uint32_t cooldown_window_lo() const {
    return cd_skip_lo_;
  }
  [[nodiscard]] std::uint32_t cooldown_window_hi() const {
    return cd_skip_hi_;
  }
  void ObserveSkipped(std::uint64_t n) { stats_.observed_instructions += n; }

  // Lowering-time observation relevance (docs/DISPATCH.md): writes one
  // ObsClass per pc into the CPU's threaded stream, proving per pc how an
  // idle engine would react to a retire there — inert (pure
  // observed_instructions credit), exit-and-observe, or
  // execute-inline-and-observe-only-when-taken. Valid while idle() and
  // until observe_epoch() changes; the epoch bumps on every mutation the
  // classification reads (cooldown set/erase via RecomputeCooldownBounds,
  // blacklist insert), so callers re-fill lazily on epoch mismatch.
  void FillObserveClasses(cpu::Cpu& cpu) const;
  [[nodiscard]] std::uint64_t observe_epoch() const { return obs_epoch_; }

 private:
  struct Cooldown {
    std::uint32_t start_pc = 0;
    bool sentinel_watch = false;
    std::uint64_t covered = 0;          // iterations vector-covered so far
    std::uint64_t extra_iterations = 0; // iterations run scalar afterwards
    std::uint64_t next_range = 0;       // re-speculation window (doubles)
  };

  std::optional<TakeoverPlan> HandleLatch(const cpu::Retired& r,
                                          const cpu::CpuState& state);
  std::optional<TakeoverPlan> PlanFromRecord(const LoopRecord& stored,
                                             const cpu::CpuState& state);
  void StoreRecord(const LoopRecord& rec, bool count_class);
  // Stage counting + the matching trace event (instant; spans are only
  // known to trackers).
  void CountStage(Stage s, std::uint32_t loop_id);
  void RecomputeCooldownBounds();
  void SetCooldown(std::uint32_t latch, const Cooldown& cd) {
    cooldowns_[latch] = cd;
    RecomputeCooldownBounds();
  }

  trace::Tracer* tracer_ = nullptr;
  bool reference_path_ = false;
  fault::FaultInjector* injector_ = nullptr;
  // Speculation-guard strike tracking: rollbacks per loop PC, and the set
  // of PCs degraded to scalar-only execution (per engine = per run).
  std::unordered_map<std::uint32_t, std::uint32_t> strikes_;
  std::unordered_set<std::uint32_t> blacklist_;
  DsaConfig cfg_;
  cpu::TimingConfig timing_;
  DsaCache dsa_cache_;
  VerificationCache vc_;
  DsaStats stats_;

  std::unordered_map<std::uint32_t, std::unique_ptr<LoopTracker>> trackers_;
  std::unordered_map<std::uint32_t, Cooldown> cooldowns_;  // by latch pc

  // PC-interest window for the cooldown scan: while every cooldown has
  // start_pc <= pc < latch the maintenance loop is provably a no-op, so
  // Observe skips it for cd_skip_lo_ <= pc < cd_skip_hi_ (lo = max start,
  // hi = min latch; empty map keeps lo > hi). Recomputed on every
  // cooldowns_ mutation.
  std::uint32_t cd_skip_lo_ = 1;
  std::uint32_t cd_skip_hi_ = 0;
  // Bumped whenever cooldowns_ or blacklist_ change — the two inputs of
  // FillObserveClasses — so sim::Run re-fills the CPU's observation
  // classes exactly when they could have gone stale. Starts at 1 so a
  // caller caching 0 always fills on first use.
  std::uint64_t obs_epoch_ = 1;
  std::vector<std::uint32_t> done_scratch_;  // reused across Observe calls
};

}  // namespace dsa::engine
