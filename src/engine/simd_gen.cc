#include "engine/simd_gen.h"

#include <map>

#include "prog/assembler.h"

namespace dsa::engine {

using isa::Instruction;
using isa::Opcode;
using isa::VecType;

namespace {

bool Fail(SimdGenError* error, const std::string& why) {
  if (error != nullptr) error->reason = why;
  return false;
}

// Maps a scalar ALU opcode onto its vector lane opcode.
std::optional<Opcode> VectorOpFor(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kAddi:
      return Opcode::kVadd;
    case Opcode::kSub:
    case Opcode::kSubi:
    case Opcode::kRsb:
      return Opcode::kVsub;
    case Opcode::kMul:
      return Opcode::kVmul;
    case Opcode::kMla:
      return Opcode::kVmla;
    case Opcode::kAnd:
    case Opcode::kAndi:
      return Opcode::kVand;
    case Opcode::kOrr:
      return Opcode::kVorr;
    case Opcode::kEor:
      return Opcode::kVeor;
    case Opcode::kMin:
      return Opcode::kVmin;
    case Opcode::kMax:
      return Opcode::kVmax;
    case Opcode::kFadd:
      return Opcode::kVadd;
    case Opcode::kFsub:
      return Opcode::kVsub;
    case Opcode::kFmul:
      return Opcode::kVmul;
    default:
      return std::nullopt;
  }
}

class Generator {
 public:
  Generator(const BodySummary& body,
            const std::array<std::uint32_t, isa::kNumScalarRegs>& regs,
            std::vector<int> scratch)
      : body_(body), regs_(regs), scratch_(std::move(scratch)) {}

  bool Run(SimdProgram& out, SimdGenError* error) {
    out.type = body_.vec_type;
    // q1..q7 for loaded streams, q8..q15 for results and broadcasts.
    next_load_q_ = 1;
    next_tmp_q_ = 8;

    std::size_t load_idx = 0;
    std::size_t store_idx = 0;
    for (const Instruction& ins : body_.code) {
      switch (ins.cls()) {
        case isa::InstrClass::kMemRead: {
          if (load_idx >= body_.loads.size()) {
            return Fail(error, "load stream mismatch");
          }
          const MemStream& s = body_.loads[load_idx++];
          if (s.loop_invariant) {
            // Invariant load: its value already sits in the destination
            // register at takeover; broadcast it.
            const int q = AllocTmp();
            if (q < 0) return Fail(error, "out of vector registers");
            Emit(out.setup, MakeVdup(q, ins.rd));
            value_q_[ins.rd] = q;
            break;
          }
          if (next_load_q_ > 7) return Fail(error, "too many load streams");
          const int q = next_load_q_++;
          const int base = StreamBase(out, s, error);
          if (base < 0) return false;
          Instruction v;
          v.op = Opcode::kVld1;
          v.vt = body_.vec_type;
          v.rd = q;
          v.rn = base;
          v.post_inc = ins.post_inc != 0 ? 16 : 0;
          out.chunk.push_back(v);
          value_q_[ins.rd] = q;
          break;
        }
        case isa::InstrClass::kMemWrite: {
          if (store_idx >= body_.stores.size()) {
            return Fail(error, "store stream mismatch");
          }
          const MemStream& s = body_.stores[store_idx++];
          const auto it = value_q_.find(ins.rd);
          if (it == value_q_.end()) {
            // Storing a loop-invariant scalar (e.g. memset): broadcast it.
            const int q = AllocTmp();
            if (q < 0) return Fail(error, "out of vector registers");
            Emit(out.setup, MakeVdup(q, ins.rd));
            value_q_[ins.rd] = q;
          }
          const int base = StreamBase(out, s, error);
          if (base < 0) return false;
          Instruction v;
          v.op = Opcode::kVst1;
          v.vt = body_.vec_type;
          v.rd = value_q_[ins.rd];
          v.rn = base;
          v.post_inc = ins.post_inc != 0 ? 16 : 0;
          out.chunk.push_back(v);
          break;
        }
        case isa::InstrClass::kIntAlu:
        case isa::InstrClass::kFpAlu: {
          if (!EmitAlu(out, ins, error)) return false;
          break;
        }
        default:
          return Fail(error, "unexpected instruction class in body code");
      }
    }
    return true;
  }

 private:
  static Instruction MakeVdup(int qd, int rn) {
    Instruction v;
    v.op = Opcode::kVdup;
    v.rd = qd;
    v.rn = rn;
    return v;
  }

  void Emit(std::vector<Instruction>& where, Instruction v) {
    v.vt = body_.vec_type;
    where.push_back(v);
  }

  int AllocTmp() { return next_tmp_q_ <= 15 ? next_tmp_q_++ : -1; }

  int AllocScratch() {
    if (scratch_.empty()) return -1;
    const int r = scratch_.back();
    scratch_.pop_back();
    return r;
  }

  // Returns the scalar register holding this stream's running address; for
  // offset streams a scratch register is initialized in the setup code.
  int StreamBase(SimdProgram& out, const MemStream& s, SimdGenError* error) {
    if (s.addr_offset == 0) return s.addr_reg;
    const auto key = std::make_pair(s.addr_reg, s.addr_offset);
    const auto it = offset_base_.find(key);
    if (it != offset_base_.end()) return it->second;
    const int r = AllocScratch();
    if (r < 0) {
      Fail(error, "no scratch register for offset stream");
      return -1;
    }
    out.setup.push_back(
        isa::MakeAluImm(Opcode::kAddi, r, s.addr_reg, s.addr_offset));
    offset_base_[key] = r;
    return r;
  }

  // Vector register holding a source operand: a mapped value, or a
  // broadcast of the (invariant) scalar register's runtime value.
  int SourceQ(SimdProgram& out, int scalar_reg) {
    const auto it = value_q_.find(scalar_reg);
    if (it != value_q_.end()) return it->second;
    const auto bit = broadcast_q_.find(scalar_reg);
    if (bit != broadcast_q_.end()) return bit->second;
    const int q = AllocTmp();
    if (q < 0) return -1;
    Emit(out.setup, MakeVdup(q, scalar_reg));
    broadcast_q_[scalar_reg] = q;
    return q;
  }

  // Broadcast of an immediate constant, materialized through a scratch
  // scalar register in the setup code.
  int ConstQ(SimdProgram& out, std::int32_t value) {
    const auto it = const_q_.find(value);
    if (it != const_q_.end()) return it->second;
    const int r = AllocScratch();
    const int q = AllocTmp();
    if (r < 0 || q < 0) return -1;
    out.setup.push_back(isa::MakeMovi(r, value));
    Emit(out.setup, MakeVdup(q, r));
    const_q_[value] = q;
    return q;
  }

  bool EmitAlu(SimdProgram& out, const Instruction& ins, SimdGenError* error) {
    if (ins.op == Opcode::kMov) {
      const int q = SourceQ(out, ins.rm);
      if (q < 0) return Fail(error, "out of vector registers");
      value_q_[ins.rd] = q;  // pure renaming
      return true;
    }
    // Shifts: the amount is a runtime-invariant scalar, baked in as an
    // immediate (the DSA generates code at runtime, Fig. 25).
    if (ins.op == Opcode::kLsl || ins.op == Opcode::kLsr) {
      const int qa = SourceQ(out, ins.rn);
      const int qd = AllocTmp();
      if (qa < 0 || qd < 0) return Fail(error, "out of vector registers");
      Instruction v;
      v.op = ins.op == Opcode::kLsl ? Opcode::kVshl : Opcode::kVshr;
      v.rd = qd;
      v.rn = qa;
      v.imm = static_cast<std::int32_t>(regs_[ins.rm] & 31);
      Emit(out.chunk, v);
      value_q_[ins.rd] = qd;
      return true;
    }
    if (ins.op == Opcode::kAsr) {
      return Fail(error, "arithmetic shift has no logical-lane equivalent");
    }

    const std::optional<Opcode> vop = VectorOpFor(ins.op);
    if (!vop.has_value()) return Fail(error, "unsupported scalar op");

    const bool imm_form = ins.op == Opcode::kAddi || ins.op == Opcode::kSubi ||
                          ins.op == Opcode::kAndi || ins.op == Opcode::kRsb;
    const int qa = SourceQ(out, ins.rn);
    const int qb = imm_form ? ConstQ(out, ins.imm) : SourceQ(out, ins.rm);
    if (qa < 0 || qb < 0) return Fail(error, "out of vector registers");

    const int qd = AllocTmp();
    if (qd < 0) return Fail(error, "out of vector registers");
    Instruction v;
    v.op = *vop;
    v.rd = qd;
    if (ins.op == Opcode::kRsb) {  // imm - rn
      v.rn = qb;
      v.rm = qa;
    } else {
      v.rn = qa;
      v.rm = qb;
    }
    if (ins.op == Opcode::kMla) {
      // qd = qd + qn*qm: seed the accumulator by copying it in.
      const int qacc = SourceQ(out, ins.ra);
      if (qacc < 0) return Fail(error, "out of vector registers");
      Instruction cp;
      cp.op = Opcode::kVorr;
      cp.rd = qd;
      cp.rn = qacc;
      cp.rm = qacc;
      Emit(out.chunk, cp);
      v.ra = qd;
    }
    Emit(out.chunk, v);
    value_q_[ins.rd] = qd;
    return true;
  }

  const BodySummary& body_;
  const std::array<std::uint32_t, isa::kNumScalarRegs>& regs_;
  std::vector<int> scratch_;
  int next_load_q_ = 1;
  int next_tmp_q_ = 8;
  std::map<int, int> value_q_;      // scalar reg -> q holding its vector
  std::map<int, int> broadcast_q_;  // invariant scalar reg -> q
  std::map<std::int32_t, int> const_q_;
  std::map<std::pair<int, std::int32_t>, int> offset_base_;
};

}  // namespace

prog::Program SimdProgram::AsLoop(int count_reg) const {
  prog::Assembler as;
  for (const Instruction& i : setup) as.Emit(i);
  const auto top = as.NewLabel();
  const auto end = as.NewLabel();
  as.Bind(top);
  as.Cmpi(count_reg, lanes());
  as.B(isa::Cond::kLt, end);
  for (const Instruction& i : chunk) as.Emit(i);
  as.AluImm(Opcode::kSubi, count_reg, count_reg, lanes());
  as.B(isa::Cond::kAl, top);
  as.Bind(end);
  as.Halt();
  return as.Finish();
}

std::optional<SimdProgram> GenerateSimd(
    const BodySummary& body,
    const std::array<std::uint32_t, isa::kNumScalarRegs>& regs,
    std::vector<int> scratch_regs, SimdGenError* error) {
  if (!body.conditions.empty()) {
    if (error != nullptr) {
      error->reason = "conditional bodies use the mapping datapath";
    }
    return std::nullopt;
  }
  SimdProgram out;
  Generator gen(body, regs, std::move(scratch_regs));
  if (!gen.Run(out, error)) return std::nullopt;
  return out;
}

}  // namespace dsa::engine
