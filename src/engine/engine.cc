#include "engine/engine.h"

#include <algorithm>
#include <vector>

#include "engine/cidp.h"

namespace dsa::engine {

using isa::Opcode;

namespace {

std::uint64_t RoundUpLanes(std::uint64_t n, std::uint64_t lanes) {
  if (n < lanes) return lanes;
  return ((n + lanes - 1) / lanes) * lanes;
}

// Fills the default coverage region of a plain (non-fused) takeover.
TakeoverPlan SelfCoverage(TakeoverPlan plan) {
  plan.coverage_start = plan.record.body.start_pc;
  plan.coverage_latch = plan.record.body.latch_pc;
  plan.count_latch = plan.record.body.latch_pc;
  return plan;
}

}  // namespace

std::string_view ToString(LoopClass c) {
  switch (c) {
    case LoopClass::kCount: return "count";
    case LoopClass::kFunction: return "function";
    case LoopClass::kOuter: return "outer";
    case LoopClass::kConditional: return "conditional";
    case LoopClass::kSentinel: return "sentinel";
    case LoopClass::kDynamicRange: return "dynamic-range";
    case LoopClass::kPartial: return "partial";
    case LoopClass::kNonVectorizable: return "non-vectorizable";
  }
  return "?";
}

std::string_view ToString(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kCrossIterationDep: return "cross-iteration-dependency";
    case RejectReason::kCarryAroundScalar: return "carry-around-scalar";
    case RejectReason::kNonUnitStride: return "non-unit-stride";
    case RejectReason::kMixedElementSizes: return "mixed-element-sizes";
    case RejectReason::kNoVectorOps: return "no-vector-ops";
    case RejectReason::kUnsupportedOp: return "unsupported-op";
    case RejectReason::kTraceOverflow: return "trace-overflow";
    case RejectReason::kVerificationCacheFull: return "verification-cache-full";
    case RejectReason::kContainsInnerLoop: return "contains-inner-loop";
    case RejectReason::kTooFewIterations: return "too-few-iterations";
    case RejectReason::kNoArrayMapsLeft: return "no-array-maps";
    case RejectReason::kFeatureDisabled: return "feature-disabled";
    case RejectReason::kRangeUnknown: return "range-unknown";
  }
  return "?";
}

DsaEngine::DsaEngine(const DsaConfig& cfg, const cpu::TimingConfig& timing)
    : cfg_(cfg), timing_(timing), dsa_cache_(cfg.dsa_cache_entries()),
      vc_(cfg.verification_cache_entries()) {}

void DsaEngine::CountStage(Stage s, std::uint32_t loop_id) {
  stats_.CountStage(s);
  if (tracer_) {
    tracer_->Emit(trace::EventKind::kStageActivation, loop_id,
                  static_cast<std::uint64_t>(s));
  }
}

void DsaEngine::StoreRecord(const LoopRecord& rec, bool count_class) {
  dsa_cache_.Insert(rec);
  ++stats_.dsa_cache_accesses;
  if (count_class) {
    ++stats_.loops_by_class[rec.cls];
    if (tracer_) {
      tracer_->Emit(trace::EventKind::kLoopClassified, rec.loop_id,
                    static_cast<std::uint64_t>(rec.cls),
                    static_cast<std::uint64_t>(rec.reject));
    }
  }
}

void DsaEngine::RecomputeCooldownBounds() {
  // Every caller is a cooldowns_ mutation, so the relevance classes any
  // CPU derived from the old state are stale from here on.
  ++obs_epoch_;
  if (cooldowns_.empty()) {
    cd_skip_lo_ = 1;
    cd_skip_hi_ = 0;
    return;
  }
  cd_skip_lo_ = 0;
  cd_skip_hi_ = UINT32_MAX;
  for (const auto& [latch, cd] : cooldowns_) {
    cd_skip_lo_ = std::max(cd_skip_lo_, cd.start_pc);
    cd_skip_hi_ = std::min(cd_skip_hi_, latch);
  }
}

void DsaEngine::FillObserveClasses(cpu::Cpu& cpu) const {
  using ObsClass = cpu::Cpu::ObsClass;
  const std::uint32_t n = static_cast<std::uint32_t>(cpu.program().size());
  for (std::uint32_t pc = 0; pc < n; ++pc) {
    ObsClass c;
    if (!cpu.latch_candidate(pc)) {
      // Non-latch retire: inert exactly when the idle fast path of
      // Observe() would take it (no cooldowns, or pc strictly inside
      // every cooldown's window); otherwise the retire can erase a
      // cooldown, so it must be observed.
      c = (cooldowns_.empty() ||
           (pc >= cd_skip_lo_ && pc < cd_skip_hi_))
              ? ObsClass::kInert
              : ObsClass::kExit;
    } else {
      // Latch candidate. A retire here can still hit the cooldown
      // maintenance scan of *another* cooldown whose closed [start, latch]
      // window excludes this pc — that erases it, so observe per-step.
      bool hits_other_cooldown = false;
      for (const auto& [other_latch, cd] : cooldowns_) {
        if (other_latch == pc) continue;
        if (pc < cd.start_pc || pc > other_latch) {
          hits_other_cooldown = true;
          break;
        }
      }
      if (hits_other_cooldown) {
        c = ObsClass::kExit;
      } else if (const auto it = cooldowns_.find(pc);
                 it != cooldowns_.end()) {
        // Cooled latch. Sentinel watch reacts to *taken* retires
        // (extra-iteration counting, possible re-speculation): execute
        // inline, observe only when taken. Every other cooled latch is
        // fully inert — HandleLatch bails on the cooldown before any
        // stage counter, taken or not.
        c = (it->second.sentinel_watch && !IsBlacklisted(pc))
                ? ObsClass::kLatchExec
                : ObsClass::kInert;
      } else if (IsBlacklisted(pc)) {
        // HandleLatch bails on the blacklist before CountStage: inert.
        c = ObsClass::kInert;
      } else {
        // Fresh latch: a taken retire starts loop detection; a not-taken
        // one is a nullopt before any counter.
        c = ObsClass::kLatchExec;
      }
    }
    cpu.SetObserveClass(pc, c);
  }
}

std::optional<TakeoverPlan> DsaEngine::Observe(const cpu::Retired& r,
                                               const cpu::CpuState& state) {
  if (r.instr == nullptr) return std::nullopt;
  ++stats_.observed_instructions;

  // Idle fast path: with no tracker in flight, the tracker loop below is
  // empty (and analysis_cycles would not tick), and while the PC sits
  // strictly inside every cooldown's [start, latch) window the maintenance
  // scan is a no-op too — only loop detection can react to this retire.
  if (!reference_path_ && trackers_.empty() &&
      (cooldowns_.empty() ||
       (r.pc >= cd_skip_lo_ && r.pc < cd_skip_hi_))) {
    return HandleLatch(r, state);
  }

  if (!trackers_.empty()) ++stats_.analysis_cycles;

  // --- cooldown maintenance -----------------------------------------------
  // While the pc sits strictly inside every cooldown's [start, latch)
  // window the scan below is provably a no-op (same argument as the idle
  // fast path) — which is where nearly every retire lands while a tracker
  // is in flight — so the fast path skips it.
  if (reference_path_ ||
      !(cooldowns_.empty() ||
        (r.pc >= cd_skip_lo_ && r.pc < cd_skip_hi_))) {
    bool erased = false;
    for (auto it = cooldowns_.begin(); it != cooldowns_.end();) {
      Cooldown& cd = it->second;
      const std::uint32_t latch = it->first;
      if (r.pc == latch && r.instr->op == Opcode::kB) {
        if (r.branch_taken && cd.sentinel_watch && !IsBlacklisted(latch)) {
          ++cd.extra_iterations;
          // The sentinel loop outlived its speculated range: speculate
          // again with a doubled window (Section 4.6.5's continued
          // execution case).
          if (LoopRecord* rec = dsa_cache_.LookupMutable(latch)) {
            if (rec->cls == LoopClass::kSentinel) {
              TakeoverPlan plan;
              plan.record = *rec;
              plan.from_cache = true;
              plan.max_iterations = std::max<std::uint64_t>(
                  cd.next_range, rec->body.lanes());
              plan.expected_iterations = plan.max_iterations;
              CountStage(Stage::kSpeculativeExecution, latch);
              ++stats_.sentinel_respeculations;
              if (tracer_) {
                tracer_->Emit(trace::EventKind::kRespeculation, latch,
                              plan.max_iterations);
                tracer_->Emit(trace::EventKind::kSpecWindow, latch,
                              plan.max_iterations);
              }
              return SelfCoverage(plan);
            }
          }
        }
        ++it;
        continue;
      }
      if (r.pc < cd.start_pc || r.pc > latch) {
        // The loop exited; a sentinel record learns the real range for the
        // next execution (Section 4.6.5's three predicting possibilities).
        if (cd.sentinel_watch) {
          if (LoopRecord* rec = dsa_cache_.LookupMutable(latch)) {
            const std::uint64_t lanes = rec->body.lanes();
            rec->speculative_range = static_cast<std::uint32_t>(
                RoundUpLanes(cd.covered + cd.extra_iterations, lanes));
            dsa_cache_.Reseal(latch);
          }
        }
        it = cooldowns_.erase(it);
        erased = true;
      } else {
        ++it;
      }
    }
    if (erased) RecomputeCooldownBounds();
  }

  // --- feed active trackers -------------------------------------------------
  {
    std::vector<std::uint32_t>& done = done_scratch_;
    done.clear();
    std::optional<TakeoverPlan> plan;
    for (auto& [latch, tracker] : trackers_) {
      const LoopTracker::Event ev = tracker->Observe(r, state);
      switch (ev) {
        case LoopTracker::Event::kReadyToVectorize: {
          LoopRecord rec = tracker->record();
          StoreRecord(rec, /*count_class=*/true);
          TakeoverPlan p;
          p.record = rec;
          p.from_cache = false;
          if (rec.cls == LoopClass::kSentinel) {
            p.max_iterations = rec.speculative_range;
          }
          plan = SelfCoverage(p);
          done.push_back(latch);
          break;
        }
        case LoopTracker::Event::kRejected: {
          const LoopRecord rec = tracker->record();
          StoreRecord(rec, /*count_class=*/true);
          SetCooldown(latch, Cooldown{rec.body.start_pc, false, 0, 0});
          done.push_back(latch);
          break;
        }
        case LoopTracker::Event::kAborted:
          done.push_back(latch);
          break;
        case LoopTracker::Event::kNone:
          break;
      }
    }
    for (const std::uint32_t l : done) trackers_.erase(l);
    if (plan.has_value()) return plan;
  }

  // --- loop detection --------------------------------------------------------
  return HandleLatch(r, state);
}

std::optional<TakeoverPlan> DsaEngine::HandleLatch(const cpu::Retired& r,
                                                   const cpu::CpuState& state) {
  (void)state;
  const isa::Instruction& ins = *r.instr;
  if (ins.op != Opcode::kB || !r.branch_taken) return std::nullopt;
  const std::uint32_t target = static_cast<std::uint32_t>(ins.imm);
  if (target > r.pc) return std::nullopt;  // not a backward branch
  const std::uint32_t latch = r.pc;
  if (trackers_.count(latch) != 0 || cooldowns_.count(latch) != 0) {
    return std::nullopt;
  }
  // Blacklisted loop PC: too many rollbacks — stay scalar forever. No
  // lookup, no tracker: the DSA ignores this loop entirely.
  if (IsBlacklisted(latch)) return std::nullopt;

  CountStage(Stage::kLoopDetection, latch);
  // Fault injection: flip bits in a stored record just before the lookup
  // that would consume it; guarded validation must catch the mismatch and
  // degrade to a re-analysis.
  if (injector_ != nullptr && dsa_cache_.Contains(latch) &&
      injector_->Fire(fault::FaultKind::kCacheCorrupt)) {
    dsa_cache_.Corrupt(latch, injector_->Rand(fault::FaultKind::kCacheCorrupt));
    if (tracer_) {
      tracer_->Emit(
          trace::EventKind::kFaultInjected, latch,
          static_cast<std::uint64_t>(fault::FaultKind::kCacheCorrupt),
          injector_->fired()[static_cast<int>(fault::FaultKind::kCacheCorrupt)]);
    }
  }
  ++stats_.dsa_cache_accesses;
  const LoopRecord* rec = dsa_cache_.Lookup(latch);
  if (rec != nullptr) {
    if (rec->cls == LoopClass::kOuter && rec->fused_outer) {
      // Fused nest (Fig. 17): take over the whole outer body, vectorizing
      // through the cached inner loop and counting its iterations.
      const std::uint32_t outer_start = rec->body.start_pc;
      const std::uint32_t outer_latch = rec->body.latch_pc;
      const LoopRecord* inner = dsa_cache_.Lookup(rec->inner_latch_pc);
      ++stats_.dsa_cache_accesses;
      if (inner != nullptr && inner->reject == RejectReason::kNone &&
          (inner->cls == LoopClass::kCount ||
           inner->cls == LoopClass::kFunction)) {
        CountStage(Stage::kStoreIdExecution, latch);
        TakeoverPlan plan;
        plan.record = *inner;
        plan.from_cache = true;
        plan.coverage_start = outer_start;
        plan.coverage_latch = outer_latch;
        plan.count_latch = inner->body.latch_pc;
        return plan;
      }
      SetCooldown(latch, Cooldown{outer_start, false, 0, 0});
      return std::nullopt;
    }
    if (rec->cls == LoopClass::kNonVectorizable ||
        rec->cls == LoopClass::kOuter ||
        rec->reject != RejectReason::kNone) {
      SetCooldown(latch, Cooldown{rec->body.start_pc, false, 0, 0});
      return std::nullopt;
    }
    // Known-vectorizable loop: activate NEON right away (Article 1
    // Fig. 5). Fresh stream bases and the live trip count are read from
    // the register file; dependency prediction re-runs with the fresh
    // range (Fig. 24's dynamic-range semantics).
    return PlanFromRecord(*rec, state);
  }

  // DSA cache miss: begin the analysis state machine at iteration 2.
  trackers_.emplace(latch, std::make_unique<LoopTracker>(target, latch, cfg_,
                                                         vc_, stats_, tracer_));
  return std::nullopt;
}

std::optional<TakeoverPlan> DsaEngine::PlanFromRecord(
    const LoopRecord& stored, const cpu::CpuState& state) {
  LoopRecord rec = stored;

  // Refresh stream base addresses from the live register file. The base
  // registers have advanced past iteration 1, so they already point at the
  // iteration-2 element — exactly where coverage starts.
  auto refresh = [&](std::vector<MemStream>& streams) {
    for (MemStream& s : streams) {
      if (s.addr_reg >= 0) {
        s.base_addr = state.regs[s.addr_reg] + s.addr_offset;
      }
    }
  };
  refresh(rec.body.loads);
  refresh(rec.body.stores);

  std::uint64_t max_iterations = 0;
  std::int64_t total_iterations = 0;
  if (rec.cls == LoopClass::kSentinel) {
    max_iterations = std::max<std::uint64_t>(rec.speculative_range,
                                             rec.body.lanes());
    total_iterations = 1 + static_cast<std::int64_t>(max_iterations);
  } else {
    if (rec.latch_cmp_rn < 0) return std::nullopt;
    const std::int64_t latch_diff =
        static_cast<std::int64_t>(
            static_cast<std::int32_t>(state.regs[rec.latch_cmp_rn])) -
        (rec.latch_cmp_is_imm
             ? rec.latch_cmp_imm
             : static_cast<std::int32_t>(state.regs[rec.latch_cmp_rm]));
    const std::optional<std::int64_t> remaining = EstimateRemainingIterations(
        latch_diff, rec.latch_diff_delta, rec.latch_cond);
    if (!remaining.has_value()) return std::nullopt;
    total_iterations = 2 + *remaining;  // iteration 1 done + this latch
  }

  // Fault injection: a forced CIDP misprediction replaces the dependency
  // verdict with an unconditional "safe", so the takeover proceeds on a
  // semantically wrong premise and the guard must catch the divergence.
  bool forced_misprediction = false;
  if (injector_ != nullptr && cfg_.enable_cidp &&
      rec.cls != LoopClass::kPartial &&
      injector_->Fire(fault::FaultKind::kCidpMispredict)) {
    forced_misprediction = true;
    if (tracer_) {
      tracer_->Emit(
          trace::EventKind::kFaultInjected, rec.loop_id,
          static_cast<std::uint64_t>(fault::FaultKind::kCidpMispredict),
          injector_->fired()[static_cast<int>(
              fault::FaultKind::kCidpMispredict)]);
    }
  }

  // Dynamic-range semantics (Fig. 24): dependency prediction must re-run on
  // every execution because a different range can create a dependency.
  if (cfg_.enable_cidp && rec.cls != LoopClass::kPartial &&
      !forced_misprediction) {
    const CidpResult dep =
        PredictBodyTraced(rec.body, total_iterations, tracer_, rec.loop_id);
    if (dep.has_dependency) {
      if (cfg_.enable_partial_vectorization && dep.distance >= 2 &&
          rec.cls != LoopClass::kConditional &&
          rec.cls != LoopClass::kSentinel) {
        rec.cls = LoopClass::kPartial;
        rec.dep_distance = dep.distance;
      } else {
        return std::nullopt;  // execute scalar this time
      }
    }
  }

  CountStage(Stage::kStoreIdExecution, rec.loop_id);
  if (tracer_ && max_iterations != 0) {
    tracer_->Emit(trace::EventKind::kSpecWindow, rec.loop_id, max_iterations);
  }
  TakeoverPlan plan;
  plan.record = rec;
  plan.from_cache = true;
  plan.max_iterations = max_iterations;
  plan.expected_iterations =
      total_iterations > 0 ? static_cast<std::uint64_t>(total_iterations) : 0;
  plan.forced_misprediction = forced_misprediction;
  return SelfCoverage(plan);
}

void DsaEngine::DemoteFusion(std::uint32_t outer_latch_pc) {
  if (LoopRecord* rec = dsa_cache_.LookupMutable(outer_latch_pc)) {
    if (rec->fused_outer) {
      rec->fused_outer = false;
      rec->reject = RejectReason::kContainsInnerLoop;
      dsa_cache_.Reseal(outer_latch_pc);
      ++stats_.fusion_demotions;
      if (tracer_) {
        tracer_->Emit(trace::EventKind::kFusionDemoted, outer_latch_pc);
      }
      SetCooldown(outer_latch_pc,
                  Cooldown{rec->body.start_pc, false, 0, 0, 0});
    }
  }
}

void DsaEngine::FinishTakeover(const TakeoverPlan& plan,
                               std::uint64_t covered_iterations,
                               std::uint64_t covered_scalar_instrs,
                               cpu::Cpu& cpu, std::uint64_t glue_instrs) {
  const LoopRecord& rec = plan.record;
  const BodySummary& body = rec.body;
  const std::uint32_t width = cpu.timing().superscalar_width;
  const neon::NeonTiming& nt = cpu.timing().neon;

  RegionCost cost;
  switch (rec.cls) {
    case LoopClass::kConditional:
      cost = CostConditionalLoop(body, covered_iterations, cfg_, nt, width);
      break;
    case LoopClass::kSentinel:
      cost = CostSentinelLoop(body, covered_iterations,
                              plan.max_iterations, cfg_, nt, width);
      break;
    case LoopClass::kPartial:
      cost = CostPartialLoop(body, covered_iterations,
                             static_cast<std::uint64_t>(rec.dep_distance),
                             cfg_, nt, width);
      break;
    default:
      cost = CostCountLoop(body, covered_iterations, cfg_, nt, width);
      break;
  }
  cost.overhead_cycles += cfg_.dsa_cache_access_latency;

  // Glue instructions of a fused nest stay scalar: charge their issue
  // bandwidth back.
  const std::uint32_t w = cpu.timing().superscalar_width;
  cost.scalar_addback_cycles += (glue_instrs + w - 1) / w;
  cost.scalar_instrs += glue_instrs;

  if (tracer_ && cost.vector_instrs > 0) {
    tracer_->Emit(trace::EventKind::kNeonBurst, rec.loop_id,
                  cost.vector_instrs, cost.neon_busy_cycles,
                  cost.neon_busy_cycles);
  }

  cpu.AddNeonBusy(cost.neon_busy_cycles);
  cpu.AddDsaOverhead(cost.overhead_cycles);
  cpu.AddStall(cost.scalar_addback_cycles);
  cpu.CountVectorRetired(cost.vector_instrs);
  cpu.stats().retired_scalar += cost.scalar_instrs;
  cpu.stats().retired_total += cost.scalar_instrs;

  ++stats_.takeovers;
  if (plan.from_cache) ++stats_.cache_hit_takeovers;
  stats_.vectorized_iterations += covered_iterations;
  stats_.scalar_covered_instrs += covered_scalar_instrs;
  stats_.vector_instrs_issued += cost.vector_instrs;
  stats_.array_map_accesses += cost.array_map_accesses;
  ++stats_.entries_by_class[rec.cls];

  // Any loop whose analysis was interrupted by this takeover contains the
  // covered loop: classify as outer. If its glue code around the covered
  // region carries no stores, fuse the nest (Fig. 17) so the next entry
  // vectorizes the whole nest in one takeover; otherwise skip future
  // analysis of it.
  for (auto& [latch, tracker] : trackers_) {
    if (plan.coverage_start >= tracker->start_pc() &&
        plan.coverage_latch <= latch) {
      LoopRecord outer;
      outer.loop_id = latch;
      outer.cls = LoopClass::kOuter;
      outer.body.start_pc = tracker->start_pc();
      outer.body.latch_pc = latch;
      const bool fusable =
          cfg_.enable_loop_fusion &&
          (rec.cls == LoopClass::kCount || rec.cls == LoopClass::kFunction) &&
          tracker->FusableAround(plan.coverage_start, plan.coverage_latch);
      if (fusable) {
        outer.fused_outer = true;
        outer.inner_latch_pc = plan.count_latch;
        ++stats_.fusions_formed;
        if (tracer_) {
          tracer_->Emit(trace::EventKind::kFusionFormed, latch,
                        plan.count_latch);
        }
      } else {
        outer.reject = RejectReason::kContainsInnerLoop;
        SetCooldown(latch, Cooldown{tracker->start_pc(), false, 0, 0});
      }
      StoreRecord(outer, /*count_class=*/true);
    }
  }
  trackers_.clear();

  // Sentinel loops may keep running past the speculated range; the
  // cooldown re-speculates with a doubled window while the loop lives and
  // updates the stored range when it exits.
  if (rec.cls == LoopClass::kSentinel) {
    Cooldown cd;
    const auto it = cooldowns_.find(body.latch_pc);
    if (it != cooldowns_.end()) {
      cd = it->second;
    } else {
      cd.start_pc = body.start_pc;
    }
    cd.sentinel_watch = true;
    cd.covered += covered_iterations;
    cd.next_range = std::min<std::uint64_t>(
        std::max<std::uint64_t>(2 * plan.max_iterations, body.lanes()), 8192);
    SetCooldown(body.latch_pc, cd);
  }
}

void DsaEngine::RecordRollback(const TakeoverPlan& plan, cpu::Cpu& cpu) {
  // The failed speculation still drained the pipe, and the restore from
  // the checkpoint costs extra on top.
  cpu.AddDsaOverhead(cfg_.pipeline_flush_latency + cfg_.rollback_penalty);
  ++stats_.rollbacks;

  // Strike against the latch that produced the plan (the outer latch for a
  // fused nest — the same PC HandleLatch gates on).
  const std::uint32_t latch = plan.coverage_latch;
  const std::uint32_t strikes = ++strikes_[latch];
  if (tracer_) {
    tracer_->Emit(trace::EventKind::kMisspecRollback, latch, strikes,
                  plan.expected_iterations);
  }
  if (strikes >= cfg_.blacklist_strikes && blacklist_.count(latch) == 0) {
    blacklist_.insert(latch);
    ++obs_epoch_;  // blacklist feeds FillObserveClasses
    ++stats_.blacklisted_loops;
    if (tracer_) {
      tracer_->Emit(trace::EventKind::kLoopBlacklisted, latch, strikes);
    }
  }

  // Any loop analysis interrupted by the squashed takeover restarts from
  // scratch, exactly as after a successful takeover.
  trackers_.clear();
}

}  // namespace dsa::engine
