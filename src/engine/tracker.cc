#include "engine/tracker.h"

#include <algorithm>

#include "engine/cidp.h"
#include "engine/reguse.h"

namespace dsa::engine {

using isa::Cond;
using isa::InstrClass;
using isa::Opcode;

namespace {

// Floor division for signed 64-bit values.
std::int64_t FloorDiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

bool IsAffineSelfUpdate(const isa::Instruction& ins) {
  return (ins.op == Opcode::kAddi || ins.op == Opcode::kSubi) &&
         ins.rd == ins.rn;
}

// Vectorizable ALU opcode classification. Returns -1 when the opcode
// inhibits vectorization, 0 for single-cycle lane ops, 1 for multiplies.
int VectorOpKind(const isa::Instruction& ins) {
  switch (ins.op) {
    case Opcode::kAdd:
    case Opcode::kAddi:
    case Opcode::kSub:
    case Opcode::kSubi:
    case Opcode::kRsb:
    case Opcode::kAnd:
    case Opcode::kAndi:
    case Opcode::kOrr:
    case Opcode::kEor:
    case Opcode::kBic:
    case Opcode::kLsl:
    case Opcode::kLsr:
    case Opcode::kAsr:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kFadd:
    case Opcode::kFsub:
      return 0;
    case Opcode::kMul:
    case Opcode::kMla:
    case Opcode::kFmul:
      return 1;
    case Opcode::kMov:
    case Opcode::kMovi:
      return 2;  // register traffic; folds away in vector form
    case Opcode::kSdiv:
    case Opcode::kFdiv:
    default:
      return -1;
  }
}

}  // namespace

std::optional<std::int64_t> EstimateRemainingIterations(std::int64_t a,
                                                        std::int64_t b,
                                                        Cond cond) {
  // Continue while CondHolds(a + j*b) for j = 1..k; return max such k.
  switch (cond) {
    case Cond::kLt:  // diff < 0
      if (b > 0) return std::max<std::int64_t>(0, FloorDiv(-1 - a, b));
      return (a + b < 0) ? std::nullopt
                         : std::optional<std::int64_t>(0);
    case Cond::kLe:  // diff <= 0
      if (b > 0) return std::max<std::int64_t>(0, FloorDiv(-a, b));
      return (a + b <= 0) ? std::nullopt
                          : std::optional<std::int64_t>(0);
    case Cond::kGt:  // diff > 0
      if (b < 0) return std::max<std::int64_t>(0, FloorDiv(a - 1, -b));
      return (a + b > 0) ? std::nullopt
                         : std::optional<std::int64_t>(0);
    case Cond::kGe:  // diff >= 0
      if (b < 0) return std::max<std::int64_t>(0, FloorDiv(a, -b));
      return (a + b >= 0) ? std::nullopt
                          : std::optional<std::int64_t>(0);
    case Cond::kNe: {  // diff != 0, terminates on exact hit
      if (b == 0) {
        return a != 0 ? std::nullopt : std::optional<std::int64_t>(0);
      }
      if ((-a) % b != 0) return std::nullopt;
      const std::int64_t j_eq = (-a) / b;
      if (j_eq < 1) return std::nullopt;  // diverging away from zero
      return j_eq - 1;
    }
    case Cond::kEq:
      return (a + b == 0 && b == 0) ? std::nullopt
                                    : std::optional<std::int64_t>(0);
    case Cond::kAl:
      return std::nullopt;  // unconditional backward branch: unbounded
  }
  return std::nullopt;
}

LoopTracker::LoopTracker(std::uint32_t start_pc, std::uint32_t latch_pc,
                         const DsaConfig& cfg, VerificationCache& vc,
                         DsaStats& stats, trace::Tracer* tracer)
    : start_pc_(start_pc), latch_pc_(latch_pc), cfg_(cfg), vc_(vc),
      stats_(stats), tracer_(tracer), iteration_(2) {
  vc_.Clear();
  record_.loop_id = latch_pc;
  record_.body.start_pc = start_pc;
  record_.body.latch_pc = latch_pc;
  if (tracer_) {
    iter_begin_cycle_ = tracer_->now();
    tracer_->Emit(trace::EventKind::kLoopDetected, latch_pc_, start_pc_);
  }
}

void LoopTracker::CountStage(Stage s) {
  stats_.CountStage(s);
  if (tracer_) {
    const std::uint64_t now = tracer_->now();
    const std::uint64_t dur =
        now >= iter_begin_cycle_ ? now - iter_begin_cycle_ : 0;
    tracer_->Emit(trace::EventKind::kStageActivation, latch_pc_,
                  static_cast<std::uint64_t>(s),
                  static_cast<std::uint64_t>(iteration_), dur);
  }
}

LoopTracker::Event LoopTracker::Observe(const cpu::Retired& r,
                                        const cpu::CpuState& state) {
  if (finished_) return Event::kNone;
  const isa::Instruction& ins = *r.instr;

  if (r.pc == latch_pc_ && ins.op == Opcode::kB) {
    return EndOfIteration(r, state);
  }

  bool returning = false;
  if (ins.op == Opcode::kBl) {
    ++call_depth_;
    has_call_ = true;
  } else if (ins.op == Opcode::kRet) {
    returning = true;  // retires at the callee's pc; control lands inside
    if (--call_depth_ < 0) {
      finished_ = true;
      return Event::kAborted;
    }
  }

  if (!returning && call_depth_ == 0 &&
      (r.pc < start_pc_ || r.pc > latch_pc_)) {
    // The loop was left through a side exit before analysis finished.
    finished_ = true;
    return Event::kAborted;
  }

  // A taken backward branch other than our latch means a nested loop.
  if (ins.op == Opcode::kB && r.branch_taken &&
      static_cast<std::uint32_t>(ins.imm) <= r.pc) {
    saw_inner_loop_ = true;
  }

  if (cur_trace_.size() >= cfg_.trace_capacity) {
    trace_overflow_ = true;
  } else {
    Obs o;
    o.pc = r.pc;
    o.ins = &ins;
    o.has_mem = r.has_mem;
    o.mem_addr = r.mem_addr;
    o.mem_bytes = r.mem_bytes;
    o.mem_is_write = r.mem_is_write;
    cur_trace_.push_back(o);
    cur_pcs_.insert(r.pc);
  }

  if (ins.op == Opcode::kCmp || ins.op == Opcode::kCmpi) {
    Obs o;
    o.pc = r.pc;
    o.ins = &ins;
    // Capture operand values at compare time for latch range estimation.
    o.mem_addr = state.regs[ins.rn];
    o.mem_bytes = ins.op == Opcode::kCmp
                      ? state.regs[ins.rm]
                      : static_cast<std::uint32_t>(ins.imm);
    last_cmp_ = o;
  }
  return Event::kNone;
}

LoopTracker::Event LoopTracker::EndOfIteration(const cpu::Retired& latch,
                                               const cpu::CpuState& state) {
  record_.latch_cond = latch.instr->cond;
  if (last_cmp_.has_value()) {
    record_.latch_cmp_rn = last_cmp_->ins->rn;
    record_.latch_cmp_rm = last_cmp_->ins->rm;
    record_.latch_cmp_imm = last_cmp_->ins->imm;
    record_.latch_cmp_is_imm = last_cmp_->ins->op == Opcode::kCmpi;
    LatchSample s;
    s.rn_val = last_cmp_->mem_addr;
    s.rm_val = last_cmp_->mem_bytes;
    s.diff = static_cast<std::int64_t>(static_cast<std::int32_t>(s.rn_val)) -
             static_cast<std::int32_t>(s.rm_val);
    latch_samples_.push_back(s);
  }

  if (!latch.branch_taken) {
    // Loop ends before the analysis could finish: too few iterations, or a
    // conditional loop whose conditions were never fully covered.
    finished_ = true;
    return Event::kAborted;
  }

  Event ev = Event::kNone;
  if (conditional_mode_) {
    CountStage(Stage::kMapping);
    ev = AnalyzeConditionalStep(state);
  } else if (iteration_ == 2) {
    CountStage(Stage::kDataCollection);
    trace2_ = cur_trace_;
    pcs2_ = cur_pcs_;
    for (const Obs& o : trace2_) {
      if (o.has_mem) {
        ++stats_.vc_accesses;
        if (!vc_.Store(o.mem_addr)) {
          return Reject(LoopClass::kNonVectorizable,
                        RejectReason::kVerificationCacheFull);
        }
      }
    }
  } else if (iteration_ == 3) {
    CountStage(Stage::kDependencyAnalysis);
    trace3_ = cur_trace_;
    pcs3_ = cur_pcs_;
    if (saw_inner_loop_) {
      return Reject(LoopClass::kOuter, RejectReason::kContainsInnerLoop);
    }
    if (trace_overflow_) {
      return Reject(LoopClass::kNonVectorizable, RejectReason::kTraceOverflow);
    }
    // Conditional-code detection: differing executed-pc sets, or a
    // conditional forward branch inside the body.
    bool has_cond_branch = false;
    for (const Obs& o : trace2_) {
      if (o.ins->op == Opcode::kB && o.pc != latch_pc_ &&
          o.ins->cond != Cond::kAl) {
        has_cond_branch = true;
      }
    }
    if (pcs2_ != pcs3_ || has_cond_branch) {
      if (!cfg_.enable_conditional_loops) {
        return Reject(LoopClass::kConditional, RejectReason::kFeatureDisabled);
      }
      conditional_mode_ = true;
      CountStage(Stage::kMapping);
      // Seed the path table with the two iterations already observed.
      std::vector<std::uint32_t> key2(pcs2_.begin(), pcs2_.end());
      PathState& p2 = paths_[key2];
      p2.first_trace = trace2_;
      p2.first_seen_iter = 2;
      p2.seen = 1;
      pcs_seen_union_.insert(pcs2_.begin(), pcs2_.end());
      ev = AnalyzeConditionalStep(state);
    } else {
      ev = AnalyzeStraightBody(state);
    }
  }

  ++iteration_;
  cur_trace_.clear();
  cur_pcs_.clear();
  last_cmp_.reset();
  call_depth_ = 0;
  if (tracer_) iter_begin_cycle_ = tracer_->now();
  return ev;
}

LoopTracker::Event LoopTracker::Reject(LoopClass cls, RejectReason why) {
  finished_ = true;
  record_.cls = cls == LoopClass::kNonVectorizable ||
                        cls == LoopClass::kOuter ||
                        cls == LoopClass::kConditional ||
                        cls == LoopClass::kSentinel
                    ? cls
                    : LoopClass::kNonVectorizable;
  record_.reject = why;
  ++stats_.rejects_by_reason[why];
  return Event::kRejected;
}

std::set<int> LoopTracker::InductionRegs(const std::vector<Obs>& trace) const {
  // A register is an induction register when every write to it inside the
  // body is an affine self-update (post-increment or addi/subi rd==rn).
  std::set<int> written_affine;
  std::set<int> written_other;
  for (const Obs& o : trace) {
    const RegUse u = UsesOf(*o.ins);
    if (u.post_inc_reg >= 0) written_affine.insert(u.post_inc_reg);
    if (u.dst >= 0) {
      if (IsAffineSelfUpdate(*o.ins)) {
        written_affine.insert(u.dst);
      } else {
        written_other.insert(u.dst);
      }
    }
  }
  std::set<int> result;
  for (const int r : written_affine) {
    if (written_other.count(r) == 0) result.insert(r);
  }
  return result;
}

bool LoopTracker::CheckCarryAround(const std::vector<Obs>& trace,
                                   const std::set<int>& induction) const {
  // Collect registers written by non-induction body instructions.
  std::set<int> body_dsts;
  for (const Obs& o : trace) {
    const RegUse u = UsesOf(*o.ins);
    if (u.dst >= 0 && induction.count(u.dst) == 0 &&
        !IsAffineSelfUpdate(*o.ins)) {
      body_dsts.insert(u.dst);
    }
  }
  // A read of such a register before its write in iteration order means the
  // value is carried around from the previous iteration (Table 1 line 5).
  std::set<int> written;
  for (const Obs& o : trace) {
    const RegUse u = UsesOf(*o.ins);
    for (int i = 0; i < u.n_srcs; ++i) {
      const int s = u.srcs[i];
      if (body_dsts.count(s) != 0 && written.count(s) == 0) return true;
    }
    if (u.dst >= 0) written.insert(u.dst);
  }
  return false;
}

std::vector<std::uint32_t> LoopTracker::StopConditionSlice(
    const std::vector<Obs>& trace) const {
  // Backward slice from the last compare in the trace.
  std::vector<std::uint32_t> slice;
  int cmp_idx = -1;
  for (int i = static_cast<int>(trace.size()) - 1; i >= 0; --i) {
    const Opcode op = trace[i].ins->op;
    if (op == Opcode::kCmp || op == Opcode::kCmpi) {
      cmp_idx = i;
      break;
    }
  }
  if (cmp_idx < 0) return slice;
  std::set<int> needed;
  {
    const RegUse u = UsesOf(*trace[cmp_idx].ins);
    for (int i = 0; i < u.n_srcs; ++i) needed.insert(u.srcs[i]);
  }
  slice.push_back(trace[cmp_idx].pc);
  for (int i = cmp_idx - 1; i >= 0; --i) {
    const RegUse u = UsesOf(*trace[i].ins);
    if (u.dst >= 0 && needed.count(u.dst) != 0) {
      slice.push_back(trace[i].pc);
      needed.erase(u.dst);
      for (int s = 0; s < u.n_srcs; ++s) needed.insert(u.srcs[s]);
    }
  }
  return slice;
}

bool LoopTracker::SummarizeTrace(const std::vector<Obs>& t2,
                                 const std::vector<Obs>& t3, BodySummary& out,
                                 RejectReason& why,
                                 bool require_store) const {
  if (t2.size() != t3.size()) {
    why = RejectReason::kRangeUnknown;
    return false;
  }
  for (std::size_t i = 0; i < t2.size(); ++i) {
    if (t2[i].pc != t3[i].pc) {
      why = RejectReason::kRangeUnknown;
      return false;
    }
  }

  const std::set<int> induction = InductionRegs(t2);

  std::uint32_t elem_bytes = 0;
  bool has_fp = false;
  for (std::size_t i = 0; i < t2.size(); ++i) {
    const Obs& a = t2[i];
    const Obs& b = t3[i];
    const isa::Instruction& ins = *a.ins;
    const InstrClass cls = ins.cls();

    if (a.has_mem) {
      MemStream s;
      s.pc = a.pc;
      s.is_write = a.mem_is_write;
      s.elem_bytes = a.mem_bytes;
      s.base_addr = a.mem_addr;
      s.addr_reg = ins.rn;
      s.addr_offset = isa::IsVector(ins.op) ? 0 : ins.imm;
      s.stride = static_cast<std::int64_t>(b.mem_addr) -
                 static_cast<std::int64_t>(a.mem_addr);
      s.loop_invariant = (s.stride == 0 && !s.is_write);
      if (!s.loop_invariant) {
        if (s.stride != s.elem_bytes) {
          // Non-unit or descending strides and rewritten scalars cannot
          // feed the NEON unit (Table 1 lines 6/7).
          why = RejectReason::kNonUnitStride;
          return false;
        }
        if (elem_bytes == 0) {
          elem_bytes = s.elem_bytes;
        } else if (elem_bytes != s.elem_bytes) {
          why = RejectReason::kMixedElementSizes;
          return false;
        }
      }
      if (s.is_write) {
        out.stores.push_back(s);
      } else {
        out.loads.push_back(s);
      }
      out.code.push_back(ins);
      continue;
    }

    switch (cls) {
      case InstrClass::kIntAlu:
      case InstrClass::kFpAlu: {
        if (IsAffineSelfUpdate(ins) && induction.count(ins.rd) != 0) {
          continue;  // induction update: stays scalar, once per chunk
        }
        const int kind = VectorOpKind(ins);
        if (kind < 0) {
          why = RejectReason::kUnsupportedOp;
          return false;
        }
        if (kind == 2 && ins.op == Opcode::kMov) out.code.push_back(ins);
        if (cls == InstrClass::kFpAlu) has_fp = true;
        if (kind == 0) ++out.alu_ops;
        if (kind == 1) ++out.mul_ops;
        out.code.push_back(ins);
        break;
      }
      case InstrClass::kCompare:
      case InstrClass::kBranch:
      case InstrClass::kCall:
      case InstrClass::kRet:
      case InstrClass::kMisc:
        break;
      default:
        why = RejectReason::kUnsupportedOp;
        return false;
    }
  }

  if (require_store && out.stores.empty()) {
    // Results never reach memory: the loop's value lives in carried
    // registers, which the DSA cannot virtualize.
    why = RejectReason::kNoVectorOps;
    return false;
  }
  if (elem_bytes == 0) elem_bytes = 4;
  out.vec_type = elem_bytes == 1
                     ? isa::VecType::kI8
                     : (elem_bytes == 2 ? isa::VecType::kI16
                                        : (has_fp ? isa::VecType::kF32
                                                  : isa::VecType::kI32));
  out.body_instrs = static_cast<std::uint32_t>(t2.size()) + 1;  // + latch

  if (CheckCarryAround(t2, induction)) {
    why = RejectReason::kCarryAroundScalar;
    return false;
  }
  why = RejectReason::kNone;
  return true;
}

std::optional<std::int64_t> LoopTracker::RemainingIterations() const {
  if (latch_samples_.size() < 2) return std::nullopt;
  const LatchSample& a = latch_samples_[latch_samples_.size() - 2];
  const LatchSample& b = latch_samples_.back();
  const std::int64_t diff_delta = b.diff - a.diff;
  return EstimateRemainingIterations(b.diff, diff_delta, record_.latch_cond);
}

LoopTracker::Event LoopTracker::AnalyzeStraightBody(
    const cpu::CpuState& state) {
  (void)state;
  BodySummary body;
  body.start_pc = start_pc_;
  body.latch_pc = latch_pc_;
  RejectReason why = RejectReason::kNone;
  if (!SummarizeTrace(trace2_, trace3_, body, why)) {
    return Reject(LoopClass::kNonVectorizable, why);
  }
  body.has_function_call = has_call_;

  // Latch characterization: sentinel when the compared register is produced
  // by a non-induction body instruction (value only known at runtime).
  const std::set<int> induction = InductionRegs(trace2_);
  bool sentinel = false;
  if (!trace2_.empty()) {
    int cmp_idx = -1;
    for (int i = static_cast<int>(trace2_.size()) - 1; i >= 0; --i) {
      const Opcode op = trace2_[i].ins->op;
      if (op == Opcode::kCmp || op == Opcode::kCmpi) {
        cmp_idx = i;
        break;
      }
    }
    if (cmp_idx >= 0) {
      const RegUse u = UsesOf(*trace2_[cmp_idx].ins);
      for (int i = 0; i < u.n_srcs; ++i) {
        const int s = u.srcs[i];
        if (induction.count(s) != 0) continue;
        for (const Obs& o : trace2_) {
          const RegUse w = UsesOf(*o.ins);
          if (w.dst == s && !IsAffineSelfUpdate(*o.ins)) {
            sentinel = true;
          }
        }
      }
    }
  }

  record_.body = body;
  record_.induction_delta = 0;
  if (latch_samples_.size() >= 2) {
    const LatchSample& s0 = latch_samples_[latch_samples_.size() - 2];
    const LatchSample& s1 = latch_samples_.back();
    record_.latch_diff_delta = s1.diff - s0.diff;
  }

  if (sentinel) {
    if (!cfg_.enable_sentinel_loops) {
      return Reject(LoopClass::kSentinel, RejectReason::kFeatureDisabled);
    }
    const std::uint32_t lanes = body.lanes();
    const auto slice = StopConditionSlice(trace2_);
    record_.body.scalar_per_iter =
        static_cast<std::uint32_t>(slice.size()) + 2;
    record_.speculative_range = lanes;
    const CidpResult dep =
        PredictBodyTraced(record_.body, 3 + lanes, tracer_, latch_pc_);
    if (dep.has_dependency) {
      return Reject(LoopClass::kNonVectorizable,
                    RejectReason::kCrossIterationDep);
    }
    record_.cls = LoopClass::kSentinel;
    finished_ = true;
    CountStage(Stage::kStoreIdExecution);
    CountStage(Stage::kSpeculativeExecution);
    return Event::kReadyToVectorize;
  }

  const std::optional<std::int64_t> remaining = RemainingIterations();
  if (!remaining.has_value()) {
    return Reject(LoopClass::kNonVectorizable, RejectReason::kRangeUnknown);
  }
  const std::int64_t total_iterations = 4 + *remaining;

  const CidpResult dep =
      cfg_.enable_cidp
          ? PredictBodyTraced(record_.body, total_iterations, tracer_,
                              latch_pc_)
          : CidpResult{};  // ablation: only exact-match detection, below
  if (!cfg_.enable_cidp) {
    // Fallback without prediction: compare iteration-3 addresses against
    // the Verification Cache contents; misses future conflicts.
    for (const Obs& o : trace3_) {
      if (o.has_mem && o.mem_is_write && vc_.Contains(o.mem_addr)) {
        return Reject(LoopClass::kNonVectorizable,
                      RejectReason::kCrossIterationDep);
      }
    }
  }

  if (dep.has_dependency) {
    if (cfg_.enable_partial_vectorization && dep.distance >= 2) {
      record_.cls = LoopClass::kPartial;
      record_.dep_distance = dep.distance;
      finished_ = true;
      CountStage(Stage::kStoreIdExecution);
      return Event::kReadyToVectorize;
    }
    return Reject(LoopClass::kNonVectorizable,
                  RejectReason::kCrossIterationDep);
  }

  // A latch comparing against a register holds a runtime-computed limit:
  // a Dynamic Range Loop type A (Fig. 13). The original DSA (Article 1)
  // only handled ranges fixed by an immediate; the extension covers DRLs.
  const bool dynamic_range = !record_.latch_cmp_is_imm;
  if (dynamic_range && !cfg_.enable_dynamic_range_loops) {
    return Reject(LoopClass::kDynamicRange, RejectReason::kFeatureDisabled);
  }
  record_.cls = dynamic_range
                    ? LoopClass::kDynamicRange
                    : (has_call_ ? LoopClass::kFunction : LoopClass::kCount);
  finished_ = true;
  CountStage(Stage::kStoreIdExecution);
  return Event::kReadyToVectorize;
}

LoopTracker::Event LoopTracker::AnalyzeConditionalStep(
    const cpu::CpuState& state) {
  (void)state;
  ++mapping_iterations_;
  if (mapping_iterations_ > 256) {
    return Reject(LoopClass::kConditional, RejectReason::kRangeUnknown);
  }
  if (trace_overflow_) {
    return Reject(LoopClass::kConditional, RejectReason::kTraceOverflow);
  }
  if (saw_inner_loop_) {
    return Reject(LoopClass::kOuter, RejectReason::kContainsInnerLoop);
  }

  std::vector<std::uint32_t> key(cur_pcs_.begin(), cur_pcs_.end());
  if (key.empty()) return Event::kNone;
  PathState& p = paths_[key];
  ++p.seen;
  pcs_seen_union_.insert(cur_pcs_.begin(), cur_pcs_.end());
  if (p.seen == 1) {
    p.first_trace = cur_trace_;
    p.first_seen_iter = iteration_;
    return Event::kNone;
  }
  if (!p.verified) {
    // Second sighting: verify the path (per-iteration strides from the
    // inter-sighting gap, carry-around check) — Fig. 19's per-condition
    // Cross-iteration Dependency Prediction.
    const std::int64_t gap = iteration_ - p.first_seen_iter;
    if (gap <= 0 || p.first_trace.size() != cur_trace_.size()) {
      return Reject(LoopClass::kConditional, RejectReason::kRangeUnknown);
    }
    // Normalize the second trace's addresses to a one-iteration stride by
    // reusing SummarizeTrace on a stride-adjusted copy.
    std::vector<Obs> adj = cur_trace_;
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (!adj[i].has_mem) continue;
      const std::int64_t d = static_cast<std::int64_t>(adj[i].mem_addr) -
                             p.first_trace[i].mem_addr;
      if (d % gap != 0) {
        return Reject(LoopClass::kConditional, RejectReason::kNonUnitStride);
      }
      adj[i].mem_addr = p.first_trace[i].mem_addr +
                        static_cast<std::uint32_t>(d / gap);
    }
    BodySummary path_body;
    RejectReason why = RejectReason::kNone;
    if (!SummarizeTrace(p.first_trace, adj, path_body, why,
                        /*require_store=*/false)) {
      return Reject(LoopClass::kConditional, why);
    }
    p.verified = true;
  }

  // Finalize once all body pcs were covered and all seen paths verified
  // (Fig. 19: no pending conditions). The latch itself is not part of any
  // path trace.
  for (std::uint32_t pc = start_pc_; pc < latch_pc_; ++pc) {
    if (pcs_seen_union_.count(pc) == 0) return Event::kNone;
  }
  for (const auto& [k, path] : paths_) {
    if (!path.verified) return Event::kNone;
  }

  return FinalizeConditional();
}

LoopTracker::Event LoopTracker::FinalizeConditional() {
  // Intersection of all paths = the always-executed portion of the body.
  std::set<std::uint32_t> inter;
  bool first = true;
  for (const auto& [key, path] : paths_) {
    std::set<std::uint32_t> pcs(key.begin(), key.end());
    if (first) {
      inter = pcs;
      first = false;
    } else {
      std::set<std::uint32_t> tmp;
      std::set_intersection(inter.begin(), inter.end(), pcs.begin(),
                            pcs.end(), std::inserter(tmp, tmp.begin()));
      inter = tmp;
    }
  }

  const std::optional<std::int64_t> remaining = RemainingIterations();
  if (!remaining.has_value()) {
    return Reject(LoopClass::kConditional, RejectReason::kRangeUnknown);
  }

  // Merge: common streams/ops from the intersection of one reference path;
  // per-path exclusive portions become CondRegions with their own budgets.
  BodySummary body;
  body.start_pc = start_pc_;
  body.latch_pc = latch_pc_;
  body.scalar_per_iter = 4;  // condition evaluation chain + latch
  std::uint32_t elem_bytes = 0;
  std::vector<MemStream> all_streams;
  bool body_filled = false;

  for (const auto& [key, path] : paths_) {
    CondRegion region;
    region.first_pc = 0;
    bool has_exclusive = false;
    for (const Obs& o : path.first_trace) {
      const bool common = inter.count(o.pc) != 0;
      if (!common && region.first_pc == 0) {
        region.first_pc = o.pc;
        has_exclusive = true;
      }
      if (!common) region.last_pc = std::max(region.last_pc, o.pc);

      if (o.has_mem) {
        MemStream s;
        s.pc = o.pc;
        s.is_write = o.mem_is_write;
        s.elem_bytes = o.mem_bytes;
        s.addr_reg = o.ins->rn;
        s.addr_offset = o.ins->imm;
        s.stride = o.mem_bytes;  // verified unit stride during path check
        // Normalize the base to iteration 2 so streams captured in
        // different iterations compare correctly under CIDP.
        s.base_addr = o.mem_addr - static_cast<std::uint32_t>(
                                       s.stride * (path.first_seen_iter - 2));
        all_streams.push_back(s);
        if (elem_bytes == 0) elem_bytes = o.mem_bytes;
        if (!common) ++region.mem_streams;
        if (common && !body_filled) {
          (s.is_write ? body.stores : body.loads).push_back(s);
        }
      } else if (o.ins->cls() == isa::InstrClass::kIntAlu ||
                 o.ins->cls() == isa::InstrClass::kFpAlu) {
        const int kind = VectorOpKind(*o.ins);
        if (kind < 0) {
          return Reject(LoopClass::kConditional, RejectReason::kUnsupportedOp);
        }
        if (kind == 2 || IsAffineSelfUpdate(*o.ins)) continue;
        if (!common) {
          ++region.vector_ops;
        } else if (!body_filled) {
          if (kind == 1) {
            ++body.mul_ops;
          } else {
            ++body.alu_ops;
          }
        }
      }
    }
    if (has_exclusive) {
      if (region.vector_ops + region.mem_streams >
          cfg_.array_maps + 4) {
        return Reject(LoopClass::kConditional, RejectReason::kNoArrayMapsLeft);
      }
      body.conditions.push_back(region);
    }
    body.body_instrs = std::max<std::uint32_t>(
        body.body_instrs, static_cast<std::uint32_t>(path.first_trace.size()) + 1);
    body_filled = true;
  }

  body.vec_type = elem_bytes == 1 ? isa::VecType::kI8
                                  : (elem_bytes == 2 ? isa::VecType::kI16
                                                     : isa::VecType::kI32);

  // Whole-body dependency prediction over all streams (Fig. 20 stores the
  // loop as non-vectorizable in the DSA Cache on a dependency).
  const std::int64_t total_iterations = iteration_ + 1 + *remaining;
  BodySummary dep_view = body;
  dep_view.loads.clear();
  dep_view.stores.clear();
  for (const MemStream& s : all_streams) {
    (s.is_write ? dep_view.stores : dep_view.loads).push_back(s);
  }
  if (cfg_.enable_cidp &&
      PredictBodyTraced(dep_view, total_iterations, tracer_, latch_pc_)
          .has_dependency) {
    return Reject(LoopClass::kConditional, RejectReason::kCrossIterationDep);
  }

  if (latch_samples_.size() >= 2) {
    const LatchSample& s0 = latch_samples_[latch_samples_.size() - 2];
    const LatchSample& s1 = latch_samples_.back();
    record_.latch_diff_delta = s1.diff - s0.diff;
  }
  record_.body = body;
  record_.cls = LoopClass::kConditional;
  finished_ = true;
  CountStage(Stage::kStoreIdExecution);
  CountStage(Stage::kSpeculativeExecution);
  return Event::kReadyToVectorize;
}

bool LoopTracker::FusableAround(std::uint32_t inner_start,
                                std::uint32_t inner_latch) const {
  if (cur_trace_.empty() && trace2_.empty()) return false;
  auto glue_ok = [&](const std::vector<Obs>& trace) {
    for (const Obs& o : trace) {
      if (o.pc >= inner_start && o.pc <= inner_latch) continue;
      if (o.mem_is_write) return false;  // stores between the loops
      if (o.ins->op == Opcode::kBl || o.ins->op == Opcode::kRet) return false;
    }
    return true;
  };
  return glue_ok(cur_trace_) && glue_ok(trace2_);
}

}  // namespace dsa::engine
