#include "engine/reguse.h"

namespace dsa::engine {

using isa::InstrClass;
using isa::Opcode;

namespace {

void AddSrc(RegUse& u, int r) {
  if (u.n_srcs < static_cast<int>(u.srcs.size())) u.srcs[u.n_srcs++] = r;
}

}  // namespace

RegUse UsesOf(const isa::Instruction& ins) {
  RegUse u;
  switch (ins.cls()) {
    case InstrClass::kMemRead:
      AddSrc(u, ins.rn);
      u.dst = ins.rd;
      if (ins.post_inc != 0) u.post_inc_reg = ins.rn;
      break;
    case InstrClass::kMemWrite:
      AddSrc(u, ins.rd);
      AddSrc(u, ins.rn);
      if (ins.post_inc != 0) u.post_inc_reg = ins.rn;
      break;
    case InstrClass::kCompare:
      AddSrc(u, ins.rn);
      if (ins.op == Opcode::kCmp) AddSrc(u, ins.rm);
      break;
    case InstrClass::kBranch:
      break;
    case InstrClass::kCall:
      u.dst = isa::kLr;
      break;
    case InstrClass::kRet:
      AddSrc(u, isa::kLr);
      break;
    case InstrClass::kIntAlu:
    case InstrClass::kFpAlu:
      switch (ins.op) {
        case Opcode::kMov:
          AddSrc(u, ins.rm);
          break;
        case Opcode::kMovi:
          break;
        case Opcode::kAddi:
        case Opcode::kSubi:
        case Opcode::kAndi:
        case Opcode::kRsb:
          AddSrc(u, ins.rn);
          break;
        case Opcode::kMla:
          AddSrc(u, ins.rn);
          AddSrc(u, ins.rm);
          AddSrc(u, ins.ra);
          break;
        default:
          AddSrc(u, ins.rn);
          AddSrc(u, ins.rm);
          break;
      }
      u.dst = ins.rd;
      break;
    default:
      break;
  }
  return u;
}

}  // namespace dsa::engine
