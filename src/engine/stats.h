// DSA activity counters: per-stage activations (used for the energy model
// of Fig. 32), loop classification census (Fig. 7), detection-latency
// accounting (Article 2/3 Table "DSA Latency") and vectorization coverage.
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "engine/loop_info.h"

namespace dsa::engine {

// The six state-machine stages (Fig. 12).
enum class Stage : std::uint8_t {
  kLoopDetection,
  kDataCollection,
  kDependencyAnalysis,
  kStoreIdExecution,
  kMapping,
  kSpeculativeExecution,
};
inline constexpr int kNumStages = 6;

[[nodiscard]] constexpr std::string_view ToString(Stage s) {
  switch (s) {
    case Stage::kLoopDetection: return "loop-detection";
    case Stage::kDataCollection: return "data-collection";
    case Stage::kDependencyAnalysis: return "dependency-analysis";
    case Stage::kStoreIdExecution: return "store-id/execution";
    case Stage::kMapping: return "mapping";
    case Stage::kSpeculativeExecution: return "speculative-execution";
  }
  return "?";
}

struct DsaStats {
  // Loop census: distinct loops by final classification, and dynamic
  // loop-entry counts by classification.
  std::map<LoopClass, std::uint64_t> loops_by_class;
  std::map<LoopClass, std::uint64_t> entries_by_class;
  std::map<RejectReason, std::uint64_t> rejects_by_reason;

  std::array<std::uint64_t, kNumStages> stage_activations{};

  // Instructions the DSA logic observed while at least one tracker was in
  // an analysis stage (its "busy" time; the DSA clock matches the core's).
  std::uint64_t analysis_cycles = 0;
  std::uint64_t observed_instructions = 0;

  std::uint64_t takeovers = 0;
  std::uint64_t cache_hit_takeovers = 0;
  // Fig. 17 / Section 4.6.5 transitions, counted so the nest-fusion and
  // sentinel re-speculation paths are observable by tests and reports.
  std::uint64_t fusions_formed = 0;
  std::uint64_t fusion_demotions = 0;
  std::uint64_t sentinel_respeculations = 0;
  std::uint64_t vectorized_iterations = 0;
  std::uint64_t scalar_covered_instrs = 0;  // scalar instrs replaced by SIMD
  std::uint64_t vector_instrs_issued = 0;
  std::uint64_t array_map_accesses = 0;
  std::uint64_t vc_accesses = 0;
  std::uint64_t dsa_cache_accesses = 0;

  // Speculation-guard activity (fault-injected runs; see docs/FAULTS.md).
  std::uint64_t rollbacks = 0;          // detected misspeculations squashed
  std::uint64_t blacklisted_loops = 0;  // loop PCs degraded to scalar-only
  std::uint64_t cache_corruptions_detected = 0;  // checksum-dropped records

  void CountStage(Stage s) {
    ++stage_activations[static_cast<int>(s)];
  }
};

}  // namespace dsa::engine
