#include "engine/speculation_guard.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace dsa::engine {

namespace {

std::uint64_t FnvBytes(const std::uint8_t* data, std::size_t n,
                       std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t FnvU64(std::uint64_t v, std::uint64_t h) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (8 * i));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void SpeculationGuard::Arm(const engine::TakeoverPlan& plan, cpu::Cpu& cpu) {
  checkpoint_ = cpu.state();
  undo_.clear();
  mem_snapshot_.clear();

  const LoopRecord& rec = plan.record;
  const bool fused = plan.coverage_start != rec.body.start_pc ||
                     plan.coverage_latch != rec.body.latch_pc;
  bound_iterations_ =
      std::max(plan.expected_iterations, plan.max_iterations);

  // The undo log is only sound when every store stream has a live
  // addressing register (PlanFromRecord refreshed its base from the
  // register file) and the iteration count is bounded. Anything else —
  // fused nests whose glue may touch memory, bodies with calls, fresh
  // takeovers whose recorded bases are stale observations — checkpoints
  // the whole memory image instead.
  snapshot_ = fused || rec.body.has_function_call || bound_iterations_ == 0 ||
              !plan.from_cache;
  if (!snapshot_) {
    for (const MemStream& s : rec.body.stores) {
      if (s.addr_reg < 0) {
        snapshot_ = true;
        break;
      }
    }
  }

  const mem::Memory& mem = cpu.memory();
  if (snapshot_) {
    mem_snapshot_ = mem.raw();
  } else {
    const std::int64_t span = static_cast<std::int64_t>(
        bound_iterations_ + cfg_.guard_margin_iterations);
    for (const MemStream& s : rec.body.stores) {
      const std::int64_t base = static_cast<std::int64_t>(s.base_addr);
      const std::int64_t step = std::abs(s.stride);
      std::int64_t lo = base;
      std::int64_t hi = base + s.elem_bytes;
      if (s.stride >= 0) {
        hi += span * step;
      } else {
        lo -= span * step;
      }
      lo = std::max<std::int64_t>(lo, 0);
      hi = std::min<std::int64_t>(hi, static_cast<std::int64_t>(mem.size()));
      if (hi <= lo) continue;
      UndoRange range;
      range.lo = static_cast<std::uint32_t>(lo);
      range.saved.resize(static_cast<std::size_t>(hi - lo));
      mem.ReadBlock(range.lo, range.saved.data(), range.saved.size());
      undo_.push_back(std::move(range));
    }
  }
  armed_ = true;
}

std::uint64_t SpeculationGuard::DigestState(const cpu::Cpu& cpu) const {
  const cpu::CpuState& st = cpu.state();
  std::uint64_t h = 14695981039346656037ull;
  h = FnvBytes(reinterpret_cast<const std::uint8_t*>(st.regs.data()),
               st.regs.size() * sizeof(st.regs[0]), h);
  for (int i = 0; i < isa::kNumVecRegs; ++i) {
    const neon::QReg& q = st.vregs.q(i);
    h = FnvBytes(q.bytes.data(), q.bytes.size(), h);
  }
  h = FnvU64(static_cast<std::uint64_t>(st.cmp_diff), h);
  h = FnvU64(st.pc, h);
  h = FnvU64(st.halted ? 1 : 0, h);

  const std::vector<std::uint8_t>& bytes = cpu.memory().raw();
  if (snapshot_) {
    h = FnvBytes(bytes.data(), bytes.size(), h);
  } else {
    for (const UndoRange& r : undo_) {
      h = FnvBytes(bytes.data() + r.lo, r.saved.size(), h);
    }
  }
  return h;
}

void SpeculationGuard::EmitFault(fault::FaultKind kind,
                                 std::uint32_t loop_id) {
  if (tracer_) {
    tracer_->Emit(trace::EventKind::kFaultInjected, loop_id,
                  static_cast<std::uint64_t>(kind),
                  injector_.fired()[static_cast<int>(kind)]);
  }
}

void SpeculationGuard::CorruptFootprint(cpu::Cpu& cpu, std::uint64_t payload,
                                        bool at_end) {
  mem::Memory& mem = cpu.memory();
  // XOR a nonzero byte pattern into the store footprint — at its far end
  // for overrun-style faults, at its base otherwise. Sites always lie
  // inside the digested+restorable coverage.
  const std::uint8_t pat[4] = {
      static_cast<std::uint8_t>(payload | 1),
      static_cast<std::uint8_t>(payload >> 8),
      static_cast<std::uint8_t>(payload >> 16),
      static_cast<std::uint8_t>(payload >> 24),
  };
  std::uint32_t addr = 0;
  std::size_t len = 0;
  if (!undo_.empty()) {
    const UndoRange& r = undo_[payload % undo_.size()];
    len = std::min<std::size_t>(4, r.saved.size());
    addr = at_end ? r.lo + static_cast<std::uint32_t>(r.saved.size() - len)
                  : r.lo;
  } else if (mem.size() >= 4) {
    // Snapshot mode: the whole image is covered; land near the middle so
    // the site is workload data rather than the zeroed tail.
    len = 4;
    addr = static_cast<std::uint32_t>(
        (payload % (mem.size() - 4)) & ~std::uint64_t{3});
  }
  for (std::size_t i = 0; i < len; ++i) {
    mem.Write8(addr + static_cast<std::uint32_t>(i),
               mem.Read8(addr + static_cast<std::uint32_t>(i)) ^ pat[i]);
  }
  if (len == 0) CorruptVregBit(cpu, payload);
}

void SpeculationGuard::CorruptVregBit(cpu::Cpu& cpu, std::uint64_t payload) {
  neon::QReg& q = cpu.state().vregs.q(
      static_cast<int>(payload % isa::kNumVecRegs));
  const int byte = static_cast<int>((payload >> 8) % q.bytes.size());
  const int bit = static_cast<int>((payload >> 16) & 7);
  q.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
}

void SpeculationGuard::CorruptStreamPointer(const engine::TakeoverPlan& plan,
                                            cpu::Cpu& cpu,
                                            std::uint64_t payload) {
  // A wild stream pointer: clobber the addressing register of one of the
  // plan's memory streams. Registers are checkpointed, so the corruption
  // is detected (digest) and undone (rollback); re-execution then uses the
  // restored, correct pointer.
  const BodySummary& body = plan.record.body;
  for (const std::vector<MemStream>* streams : {&body.stores, &body.loads}) {
    for (const MemStream& s : *streams) {
      if (s.addr_reg >= 0) {
        cpu.state().regs[s.addr_reg] ^=
            static_cast<std::uint32_t>(payload | 1);
        return;
      }
    }
  }
  CorruptVregBit(cpu, payload);  // no live stream register to poison
}

void SpeculationGuard::ApplyFaults(const engine::TakeoverPlan& plan,
                                   cpu::Cpu& cpu,
                                   std::uint64_t covered_iterations) {
  (void)covered_iterations;
  const std::uint32_t loop = plan.coverage_latch;
  const LoopRecord& rec = plan.record;

  // A forced CIDP misprediction (fired at plan time by the engine) means
  // the covered run vectorized across a real dependency: the speculative
  // result is wrong somewhere in the store footprint.
  if (plan.forced_misprediction) {
    CorruptFootprint(cpu, injector_.Rand(fault::FaultKind::kCidpMispredict),
                     /*at_end=*/false);
  }
  // Vector Map wrong-lane selection only exists on conditional loops.
  if (rec.cls == LoopClass::kConditional &&
      injector_.Fire(fault::FaultKind::kWrongLane)) {
    EmitFault(fault::FaultKind::kWrongLane, loop);
    CorruptFootprint(cpu, injector_.Rand(fault::FaultKind::kWrongLane),
                     /*at_end=*/false);
  }
  // Sentinel overrun: speculative stores past the terminator element, i.e.
  // at the far end of the (margin-padded) footprint.
  if (rec.cls == LoopClass::kSentinel &&
      injector_.Fire(fault::FaultKind::kSentinelOverrun)) {
    EmitFault(fault::FaultKind::kSentinelOverrun, loop);
    CorruptFootprint(cpu, injector_.Rand(fault::FaultKind::kSentinelOverrun),
                     /*at_end=*/true);
  }
  // Single-event upset in a NEON lane: any takeover.
  if (injector_.Fire(fault::FaultKind::kLaneBitflip)) {
    EmitFault(fault::FaultKind::kLaneBitflip, loop);
    CorruptVregBit(cpu, injector_.Rand(fault::FaultKind::kLaneBitflip));
  }
  // Wild stream pointer: any takeover.
  if (injector_.Fire(fault::FaultKind::kMemFault)) {
    EmitFault(fault::FaultKind::kMemFault, loop);
    CorruptStreamPointer(plan, cpu, injector_.Rand(fault::FaultKind::kMemFault));
  }
}

bool SpeculationGuard::CheckAfterCovered(const engine::TakeoverPlan& plan,
                                         cpu::Cpu& cpu,
                                         std::uint64_t covered_iterations) {
  if (!armed_) {
    throw std::logic_error("SpeculationGuard::CheckAfterCovered without Arm");
  }
  armed_ = false;
  // Covered execution is functionally scalar, so the state it produced IS
  // the scalar reference; the injected corruptions stand in for what a
  // faulty vector pipeline would have produced instead.
  const std::uint64_t reference = DigestState(cpu);
  ApplyFaults(plan, cpu, covered_iterations);
  const std::uint64_t speculative = DigestState(cpu);
  const bool diverged = speculative != reference;
  if (diverged && !snapshot_ &&
      covered_iterations > bound_iterations_ + cfg_.guard_margin_iterations) {
    // The undo log was sized from the plan's iteration bound; running past
    // it would make the rollback unsound. Bounded plans cannot legally
    // exceed it, so this is a harness bug, not a recoverable fault.
    throw std::logic_error("speculation guard: covered run exceeded the "
                           "undo log's iteration bound");
  }
  return diverged;
}

void SpeculationGuard::Rollback(cpu::Cpu& cpu) {
  cpu.state() = checkpoint_;
  mem::Memory& mem = cpu.memory();
  if (snapshot_) {
    mem.WriteBlock(0, mem_snapshot_.data(), mem_snapshot_.size());
  } else {
    for (const UndoRange& r : undo_) {
      mem.WriteBlock(r.lo, r.saved.data(), r.saved.size());
    }
  }
}

}  // namespace dsa::engine
