// SIMD instruction generation (Section 4.7, Fig. 25): turns an analyzed
// straight loop body into the NEON instruction sequence the DSA issues to
// the engine — vld1 per load stream, vdup for loop-invariant operands
// (values baked in from the live register file, since the DSA generates at
// runtime), the lane-op DAG, and vst1 per store stream.
//
// The timing model (vector_cost) and this generator are two views of the
// same Section 4.7 process; the generator makes the emitted code concrete
// and is validated by executing it against the scalar loop's semantics.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/loop_info.h"
#include "isa/instruction.h"
#include "prog/program.h"

namespace dsa::engine {

struct SimdProgram {
  // Executed once when the engine is activated: constant materialization
  // and vdup broadcasts, plus base-pointer adjustments for offset streams.
  std::vector<isa::Instruction> setup;
  // One 128-bit chunk: processes `lanes` iterations.
  std::vector<isa::Instruction> chunk;
  isa::VecType type = isa::VecType::kI32;

  [[nodiscard]] int lanes() const { return isa::LaneCount(type); }

  // Wraps setup+chunk into a runnable count-down loop over `count_reg`
  // elements (assumed to hold a lane multiple), ending in halt. Used by
  // the validation harness and by dsa_inspect's Fig. 25 listing.
  [[nodiscard]] prog::Program AsLoop(int count_reg) const;
};

struct SimdGenError {
  std::string reason;
};

// Generates the SIMD program for a straight (non-conditional) body.
// `regs` is the live scalar register file at takeover, used to bake in
// runtime-constant operands (shift amounts, invariant scalars).
// `scratch_regs` are scalar registers the generated code may clobber for
// offset-stream bases and constant materialization.
[[nodiscard]] std::optional<SimdProgram> GenerateSimd(
    const BodySummary& body,
    const std::array<std::uint32_t, isa::kNumScalarRegs>& regs,
    std::vector<int> scratch_regs, SimdGenError* error = nullptr);

}  // namespace dsa::engine
