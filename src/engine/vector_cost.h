// Analytic timing and instruction-count model of a DSA-vectorized region.
// This is the paper's methodology verbatim: the trace-level simulator
// replaces the scalar vectorizable instructions of the covered iterations
// by the vector instructions the DSA would emit (Section 4.7) and charges
// the NEON-pipeline latencies, the pipeline flush, the speculative-select
// overhead and the chosen leftover technique (Section 4.8).
#pragma once

#include <cstdint>

#include "engine/config.h"
#include "engine/loop_info.h"
#include "neon/vector_unit.h"

namespace dsa::engine {

// Leftover strategies of Section 4.8.
enum class LeftoverKind : std::uint8_t {
  kNone,           // iteration count was an exact lane multiple
  kSingleElements, // per-element lane load/op/store
  kOverlapping,    // re-run one full vector over the tail (idempotent only)
  kLargerArrays,   // padded allocation; full vectors throughout
};

[[nodiscard]] std::string_view ToString(LeftoverKind k);

// Selects the leftover technique for a body: Overlapping when no store
// stream aliases a load stream (recomputing lanes is then idempotent) and
// the region fills at least one full vector; Single Elements otherwise.
// Larger Arrays requires allocation cooperation and is only used when the
// workload declares padded buffers (ablation benches exercise it).
[[nodiscard]] LeftoverKind ChooseLeftover(const BodySummary& body,
                                          std::uint64_t iterations,
                                          bool padded_buffers = false);

struct RegionCost {
  std::uint64_t neon_busy_cycles = 0;   // NEON pipeline occupancy
  std::uint64_t scalar_addback_cycles = 0;  // per-iteration scalar residue
  std::uint64_t overhead_cycles = 0;    // flush, cache hits, selects
  std::uint64_t vector_instrs = 0;      // NEON instructions issued
  std::uint64_t scalar_instrs = 0;      // residual scalar instructions
  std::uint64_t array_map_accesses = 0;

  [[nodiscard]] std::uint64_t total_cycles() const {
    return neon_busy_cycles + scalar_addback_cycles + overhead_cycles;
  }

  RegionCost& operator+=(const RegionCost& o) {
    neon_busy_cycles += o.neon_busy_cycles;
    scalar_addback_cycles += o.scalar_addback_cycles;
    overhead_cycles += o.overhead_cycles;
    vector_instrs += o.vector_instrs;
    scalar_instrs += o.scalar_instrs;
    array_map_accesses += o.array_map_accesses;
    return *this;
  }
};

// Cycles one 128-bit-wide pass over the body costs on the NEON pipeline
// (loads + ops + stores for one chunk of `lanes` iterations).
[[nodiscard]] std::uint64_t ChunkCycles(const BodySummary& body,
                                        const neon::NeonTiming& t);

// NEON instructions issued per chunk.
[[nodiscard]] std::uint64_t ChunkInstrs(const BodySummary& body);

// Count / function / dynamic-range loop region covering `iterations`.
[[nodiscard]] RegionCost CostCountLoop(const BodySummary& body,
                                       std::uint64_t iterations,
                                       const DsaConfig& cfg,
                                       const neon::NeonTiming& t,
                                       std::uint32_t superscalar_width);

// Conditional loop (Section 4.6.4): one full-range vector pass per
// condition on its first dynamic occurrence, per-iteration scalar mapping
// of the taken condition, and a speculative select at chunk boundaries.
[[nodiscard]] RegionCost CostConditionalLoop(const BodySummary& body,
                                             std::uint64_t iterations,
                                             const DsaConfig& cfg,
                                             const neon::NeonTiming& t,
                                             std::uint32_t superscalar_width);

// Sentinel loop (Section 4.6.5): vector passes sized by the speculative
// range (overshoot lanes are charged and discarded); the stop-condition
// slice executes scalar every iteration; iterations beyond the speculated
// range run scalar on the ARM core (charged by the caller, not here).
[[nodiscard]] RegionCost CostSentinelLoop(const BodySummary& body,
                                          std::uint64_t covered_iterations,
                                          std::uint64_t speculative_range,
                                          const DsaConfig& cfg,
                                          const neon::NeonTiming& t,
                                          std::uint32_t superscalar_width);

// Partial vectorization (Section 4.5): windows of `window` iterations,
// re-synchronized between windows.
[[nodiscard]] RegionCost CostPartialLoop(const BodySummary& body,
                                         std::uint64_t iterations,
                                         std::uint64_t window,
                                         const DsaConfig& cfg,
                                         const neon::NeonTiming& t,
                                         std::uint32_t superscalar_width);

}  // namespace dsa::engine
