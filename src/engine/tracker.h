// Per-loop analysis state machine (Fig. 12 / Fig. 18). One LoopTracker is
// created when the DSA's Loop Detection stage observes a taken backward
// branch whose loop ID misses in the DSA Cache. The tracker then walks the
// Data Collection (iteration 2), Dependency Analysis (iteration 3) and
// Store ID/Execution (iteration 4) stages; conditional loops divert into
// the Mapping stage until every condition has been observed and verified.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "cpu/cpu.h"
#include "engine/config.h"
#include "engine/dsa_cache.h"
#include "engine/loop_info.h"
#include "engine/stats.h"
#include "trace/trace.h"

namespace dsa::engine {

// Number of additional taken latch evaluations for an affine latch whose
// cmp currently evaluates to `diff_now` (rn - rm) and whose diff advances
// by `diff_delta` per iteration; branch continues while `cond` holds.
// nullopt = not computable / non-terminating under the affine model.
[[nodiscard]] std::optional<std::int64_t> EstimateRemainingIterations(
    std::int64_t diff_now, std::int64_t diff_delta, isa::Cond cond);

class LoopTracker {
 public:
  enum class Event {
    kNone,
    kReadyToVectorize,  // record() holds a vectorizable LoopRecord
    kRejected,          // record() holds the reject classification
    kAborted,           // loop exited before analysis completed; discard
  };

  // `tracer` may be null (untraced run); stage activations then only count
  // into `stats`.
  LoopTracker(std::uint32_t start_pc, std::uint32_t latch_pc,
              const DsaConfig& cfg, VerificationCache& vc, DsaStats& stats,
              trace::Tracer* tracer = nullptr);

  // Feeds one retired instruction. `state` is the architectural state
  // after the retire (the DSA taps the O3CPU pipeline, Fig. 31).
  Event Observe(const cpu::Retired& r, const cpu::CpuState& state);

  [[nodiscard]] const LoopRecord& record() const { return record_; }
  [[nodiscard]] std::uint32_t start_pc() const { return start_pc_; }
  [[nodiscard]] std::uint32_t latch_pc() const { return latch_pc_; }
  [[nodiscard]] bool in_analysis() const { return !finished_; }

  // True when every instruction observed so far *outside* the given inner
  // range is fusion-friendly glue (no stores): the Fig. 17 criterion for
  // treating inner and outer loop as one.
  [[nodiscard]] bool FusableAround(std::uint32_t inner_start,
                                   std::uint32_t inner_latch) const;

 private:
  struct Obs {
    std::uint32_t pc = 0;
    const isa::Instruction* ins = nullptr;
    bool has_mem = false;
    std::uint32_t mem_addr = 0;
    std::uint32_t mem_bytes = 0;
    bool mem_is_write = false;
  };

  struct LatchSample {
    std::int64_t diff = 0;       // cmp rn - rm at the latch
    std::uint32_t rn_val = 0;
    std::uint32_t rm_val = 0;
  };

  // One control-flow path through a conditional body, keyed by its
  // executed-pc signature (the paper indexes conditions by their first
  // instruction address; the signature generalizes to if/else chains).
  struct PathState {
    std::vector<Obs> first_trace;
    std::int64_t first_seen_iter = 0;
    int seen = 0;
    bool verified = false;
  };

  // Counts a stage activation into the stats and, when tracing, emits the
  // matching kStageActivation event spanning the iteration that fed it.
  void CountStage(Stage s);

  Event EndOfIteration(const cpu::Retired& latch, const cpu::CpuState& state);
  Event AnalyzeStraightBody(const cpu::CpuState& state);
  Event AnalyzeConditionalStep(const cpu::CpuState& state);
  Event FinalizeConditional();
  Event Reject(LoopClass cls, RejectReason why);

  // Builds streams/op counts from a single-iteration trace restricted to
  // `pcs` (nullptr = whole trace). Returns false on an inhibiting factor.
  bool SummarizeTrace(const std::vector<Obs>& t2, const std::vector<Obs>& t3,
                      BodySummary& out, RejectReason& why,
                      bool require_store = true) const;
  bool CheckCarryAround(const std::vector<Obs>& trace,
                        const std::set<int>& induction_regs) const;
  [[nodiscard]] std::set<int> InductionRegs(const std::vector<Obs>& trace) const;
  [[nodiscard]] std::vector<std::uint32_t> StopConditionSlice(
      const std::vector<Obs>& trace) const;

  // Latch range estimation from the recorded latch samples.
  [[nodiscard]] std::optional<std::int64_t> RemainingIterations() const;

  std::uint32_t start_pc_;
  std::uint32_t latch_pc_;
  const DsaConfig& cfg_;
  VerificationCache& vc_;
  DsaStats& stats_;
  trace::Tracer* tracer_;
  std::uint64_t iter_begin_cycle_ = 0;  // trace: span of the current iter

  std::int64_t iteration_ = 1;  // iteration currently executing (1-based)
  int call_depth_ = 0;
  bool saw_inner_loop_ = false;
  bool trace_overflow_ = false;
  bool has_call_ = false;
  bool finished_ = false;

  std::vector<Obs> cur_trace_;
  std::vector<Obs> trace2_;
  std::vector<Obs> trace3_;
  std::set<std::uint32_t> pcs2_;
  std::set<std::uint32_t> pcs3_;
  std::set<std::uint32_t> cur_pcs_;

  std::optional<Obs> last_cmp_;        // last compare retired this iteration
  std::vector<LatchSample> latch_samples_;

  bool conditional_mode_ = false;
  std::map<std::vector<std::uint32_t>, PathState> paths_;
  std::set<std::uint32_t> pcs_seen_union_;
  std::int64_t mapping_iterations_ = 0;

  LoopRecord record_;
};

}  // namespace dsa::engine
