// Loop metadata produced by the DSA analysis stages and consumed by the
// SIMD generation / timing model and the DSA Cache.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "isa/instruction.h"
#include "isa/opcode.h"

namespace dsa::engine {

// Loop taxonomy of Chapter 4 (plus bookkeeping classes).
enum class LoopClass : std::uint8_t {
  kCount,          // fixed/affine trip count readable at runtime entry
  kFunction,       // count loop containing a non-inline call
  kOuter,          // outer loop of a nest (vectorized through its inner loop)
  kConditional,    // body contains data-dependent if/else regions
  kSentinel,       // latch depends on loaded data (DRL type B)
  kDynamicRange,   // trip count computed at runtime before entry (DRL type A)
  kPartial,        // carries a cross-iteration dependency; windowed vect.
  kNonVectorizable,
};

// Why a loop was classified non-vectorizable (Table 1 inhibiting factors).
enum class RejectReason : std::uint8_t {
  kNone,
  kCrossIterationDep,     // true data dependency, window too small
  kCarryAroundScalar,     // Table 1 line 5
  kNonUnitStride,         // Table 1 line 7: indirect / strided access
  kMixedElementSizes,     // Table 1 line 9
  kNoVectorOps,           // nothing to vectorize
  kUnsupportedOp,         // e.g. integer division
  kTraceOverflow,         // body larger than analysis buffers
  kVerificationCacheFull, // more data addresses than the VC holds
  kContainsInnerLoop,     // outer loop, handled via its inner loop
  kTooFewIterations,      // loop exited before analysis completed
  kNoArrayMapsLeft,       // conditional loop needs more maps than available
  kFeatureDisabled,       // loop class not supported by this DSA variant
  kRangeUnknown,          // latch not an affine count and not sentinel-like
};

[[nodiscard]] std::string_view ToString(LoopClass c);
[[nodiscard]] std::string_view ToString(RejectReason r);

// One streaming memory access inside the loop body (a load or store pc).
struct MemStream {
  std::uint32_t pc = 0;
  bool is_write = false;
  std::uint32_t elem_bytes = 4;
  std::uint32_t base_addr = 0;   // address observed in iteration 2
  std::int64_t stride = 0;       // addr(iter3) - addr(iter2)
  bool loop_invariant = false;   // stride == 0 (becomes a vdup)
  // Addressing-mode fields: on a DSA-cache hit the engine reads the fresh
  // stream base straight from the register file (base = regs[addr_reg] +
  // addr_offset at the first latch), so NEON activates without an extra
  // revalidation iteration (Article 1 Fig. 5).
  int addr_reg = -1;
  std::int32_t addr_offset = 0;
};

// One conditionally-executed pc region of a conditional loop.
struct CondRegion {
  std::uint32_t first_pc = 0;  // region id, as in Fig. 20
  std::uint32_t last_pc = 0;
  std::uint32_t vector_ops = 0;
  std::uint32_t mem_streams = 0;
  bool verified = false;
};

// Summary of one loop body, sufficient to generate SIMD instructions
// (Section 4.7) and to price the vectorized execution.
struct BodySummary {
  std::uint32_t start_pc = 0;
  std::uint32_t latch_pc = 0;
  isa::VecType vec_type = isa::VecType::kI32;
  std::vector<MemStream> loads;
  std::vector<MemStream> stores;
  std::uint32_t alu_ops = 0;       // element-wise single-cycle vector ops
  std::uint32_t mul_ops = 0;       // vector multiply/mla class ops
  std::uint32_t body_instrs = 0;   // dynamic instructions per iteration
  // Instructions that stay scalar per iteration when vectorized:
  // latch + induction updates (count loops), plus the stop-condition
  // slice (sentinel) or condition-evaluation chain (conditional loops).
  std::uint32_t scalar_per_iter = 2;
  bool has_function_call = false;
  std::vector<CondRegion> conditions;
  // The body's data instructions in iteration order (loads, stores and
  // vectorizable ALU ops; induction updates and the latch excluded) —
  // the input of the SIMD instruction generator (Section 4.7).
  std::vector<isa::Instruction> code;

  [[nodiscard]] int lanes() const { return isa::LaneCount(vec_type); }
};

// Record stored in the DSA Cache: everything needed to re-trigger NEON
// execution on a later encounter without repeating the full analysis
// (loop ID, size info, condition IDs — Section 4.6.4.1).
struct LoopRecord {
  std::uint32_t loop_id = 0;  // start pc, as in Article 1 Fig. 5
  LoopClass cls = LoopClass::kNonVectorizable;
  RejectReason reject = RejectReason::kNone;
  BodySummary body;
  // Count/DRL loops: induction state for range re-evaluation on re-entry.
  int induction_reg = -1;
  std::int64_t induction_delta = 0;
  int limit_reg = -1;               // -1 when the latch compares an imm
  std::int32_t limit_imm = 0;
  isa::Cond latch_cond = isa::Cond::kLt;
  // Latch compare operands, so a cache hit can recompute the trip count
  // from live register values at the first latch.
  int latch_cmp_rn = -1;
  int latch_cmp_rm = -1;
  std::int32_t latch_cmp_imm = 0;
  bool latch_cmp_is_imm = false;
  // Per-iteration advance of the latch compare's (rn - rm) difference;
  // lets a cache hit re-estimate the range from one fresh latch sample.
  std::int64_t latch_diff_delta = 0;
  // Sentinel loops: speculative range from the previous execution.
  std::uint32_t speculative_range = 0;
  // Partial vectorization: dependency distance in iterations.
  std::int64_t dep_distance = 0;
  // Inner/outer fusion (Fig. 17): an outer loop whose glue code around a
  // vectorizable inner loop carries no stores is fused — its next entry
  // takes over the whole nest, counting inner-loop iterations.
  bool fused_outer = false;
  std::uint32_t inner_latch_pc = 0;
  // Integrity seal over the record's payload fields, computed by the DSA
  // Cache on Insert/Reseal and validated on lookup when the cache runs in
  // guarded mode (fault injection); a mismatch means the stored entry was
  // corrupted or aliased and must not drive a takeover.
  std::uint64_t checksum = 0;
};

}  // namespace dsa::engine
