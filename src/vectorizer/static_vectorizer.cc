#include "vectorizer/static_vectorizer.h"

#include <stdexcept>

namespace dsa::vectorizer {

using isa::Cond;
using isa::Opcode;
using prog::Assembler;

void EmitElementwiseLoop(Assembler& as, const ElementwiseLoopSpec& spec) {
  if (spec.load_regs.size() > 7) {
    throw std::invalid_argument("too many load streams for q1..q7");
  }
  const int lanes = isa::LaneCount(spec.type);
  const int cnt = spec.count_reg;

  // --- vector chunk loop ----------------------------------------------------
  const Assembler::Label chunk_top = as.NewLabel();
  const Assembler::Label chunk_done = as.NewLabel();
  const Assembler::Label tail_top = as.NewLabel();
  const Assembler::Label tail_done = as.NewLabel();

  as.Bind(chunk_top);
  as.Cmpi(cnt, spec.padded_tail ? 1 : lanes);
  as.B(Cond::kLt, chunk_done);
  for (std::size_t i = 0; i < spec.load_regs.size(); ++i) {
    as.Vld1(spec.type, static_cast<int>(1 + i), spec.load_regs[i]);
  }
  if (spec.vector_ops) spec.vector_ops(as);
  for (std::size_t i = 0; i < spec.store_regs.size(); ++i) {
    as.Vst1(spec.type, static_cast<int>(8 + i), spec.store_regs[i]);
  }
  // Library-wrapper overhead of hand-coded intrinsics, if any.
  for (int i = 0; i < spec.per_chunk_overhead_instrs; ++i) as.Nop();
  as.AluImm(Opcode::kSubi, cnt, cnt, lanes);
  as.Cmpi(cnt, spec.padded_tail ? 1 : lanes);
  as.B(Cond::kGe, chunk_top);
  as.Bind(chunk_done);

  if (spec.padded_tail) return;  // larger-arrays: buffers absorbed the tail

  // --- scalar tail (single elements) ----------------------------------------
  const Opcode ld = spec.type == isa::VecType::kI8
                        ? Opcode::kLdrb
                        : (spec.type == isa::VecType::kI16 ? Opcode::kLdrh
                                                           : Opcode::kLdr);
  const Opcode st = spec.type == isa::VecType::kI8
                        ? Opcode::kStrb
                        : (spec.type == isa::VecType::kI16 ? Opcode::kStrh
                                                           : Opcode::kStr);
  const int elem = isa::LaneBytes(spec.type);

  as.Bind(tail_top);
  as.Cmpi(cnt, 0);
  as.B(Cond::kLe, tail_done);
  for (std::size_t i = 0; i < spec.load_regs.size(); ++i) {
    as.Emit(isa::MakeLoad(ld, static_cast<int>(4 + i), spec.load_regs[i],
                          elem));
  }
  if (spec.scalar_ops) spec.scalar_ops(as);
  for (std::size_t i = 0; i < spec.store_regs.size(); ++i) {
    as.Emit(isa::MakeStore(st, static_cast<int>(8 + i), spec.store_regs[i],
                           elem));
  }
  as.AluImm(Opcode::kSubi, cnt, cnt, 1);
  as.B(Cond::kAl, tail_top);
  as.Bind(tail_done);
}

void EmitAutoVecGuard(Assembler& as, int reg_a, int reg_b, int scratch_reg) {
  // Overlap check: |a - b| compared against a vector-width window, the
  // kind of versioning test compilers add ahead of possibly-aliasing loops.
  const Assembler::Label merge = as.NewLabel();
  as.Alu(Opcode::kSub, scratch_reg, reg_a, reg_b);
  as.Cmpi(scratch_reg, 16);
  as.B(Cond::kGe, merge);
  as.Emit(isa::MakeAluImm(Opcode::kRsb, scratch_reg, scratch_reg, 0));
  as.Cmpi(scratch_reg, 16);
  as.Bind(merge);
  as.Nop();  // fall through to the scalar version either way
}

}  // namespace dsa::vectorizer
