// Static vectorization support: the code-generation helpers a compiler
// auto-vectorizer ("ARM NEON AutoVec") or a library hand-coder ("ARM NEON
// hand-vectorized") would produce at compile time. Both baselines emit a
// chunked vector loop plus a scalar tail; their *capability envelope*
// (which loops they may vectorize at all) is decided by the workload
// builders following the paper's Table 1 inhibiting factors:
//   - AutoVec vectorizes only count loops with an iteration count fixed at
//     loop start, no conditionals, no calls, no aliasing risk; it also
//     emits runtime guard checks on loops it attempted but rejected.
//   - Hand-coded vectorizes count loops and conditional loops (via masked
//     blending that computes every arm for every element), but cannot
//     exploit runtime ranges of sentinel loops, and pays a library-wrapper
//     overhead per chunk (scalar<->vector moves, alignment checks).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "prog/assembler.h"

namespace dsa::vectorizer {

// Emits a vectorized elementwise loop over `count` elements:
//   while (count >= lanes) { q1..qN <- vld1(load_regs); ops; vst1(store_regs) }
//   while (count > 0)      { scalar_ops on single elements }
// Base address registers advance with post-increment. `count` may be a
// compile-time constant (static_count >= 0) or live in count_reg.
struct ElementwiseLoopSpec {
  isa::VecType type = isa::VecType::kI32;
  std::vector<int> load_regs;   // base addr registers; data lands in q1..qN
  std::vector<int> store_regs;  // results taken from q8, q9, ... in order
  // Emits the vector computation: inputs in q1..qN, results into q8...
  std::function<void(prog::Assembler&)> vector_ops;
  // Emits the scalar computation for one element: inputs loaded into
  // r4..r(4+N-1) by the helper, result expected in r8 (stored by helper).
  std::function<void(prog::Assembler&)> scalar_ops;
  int count_reg = 0;            // elements left; clobbered
  int scratch_reg = 9;          // scratch for counters
  // Extra per-chunk overhead instructions, modeling the ARM-library
  // wrapper cost of hand-coded intrinsics (0 for compiler output).
  int per_chunk_overhead_instrs = 0;
  // Use the Larger Arrays leftover technique instead of a scalar tail
  // (requires the workload to have padded its buffers).
  bool padded_tail = false;
};

void EmitElementwiseLoop(prog::Assembler& as, const ElementwiseLoopSpec& spec);

// Emits the runtime alias/iteration-count guard sequence the
// auto-vectorizer inserts before loops it attempted but could not prove
// vectorizable (the source of its small slowdowns on Dijkstra/QSort).
void EmitAutoVecGuard(prog::Assembler& as, int reg_a, int reg_b,
                      int scratch_reg);

}  // namespace dsa::vectorizer
