#!/usr/bin/env python3
"""Structural validator for dsa-trace/1 Chrome trace-event JSON.

Checks that a file produced by `--trace PATH` (trace/chrome_export.cc):
  * is well-formed JSON carrying the "dsa-trace/1" schema marker,
  * uses only the phase types the exporter emits (M, X, B, E, i),
  * has non-negative timestamps and durations,
  * balances takeover B/E pairs per (pid, tid),
  * declares every traced process in metadata.processes, and
  * (when a process dropped no events) has per-stage event counts that
    re-derive exactly to the declared stage_activations aggregates.

Exit code 0 = valid, 1 = validation failure, 2 = usage/IO error.

  $ python3 scripts/validate_trace.py out.json
"""
import json
import sys

ALLOWED_PHASES = {"M", "X", "B", "E", "i"}


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_trace: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    if doc.get("schema") != "dsa-trace/1":
        fail(f"schema marker is {doc.get('schema')!r}, expected 'dsa-trace/1'")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    processes = doc.get("metadata", {}).get("processes")
    if not isinstance(processes, list) or not processes:
        fail("metadata.processes missing or empty")

    declared_pids = {p["pid"] for p in processes}
    seen_pids = set()
    begin_depth = {}  # (pid, tid) -> open B count
    stage_counts = {}  # pid -> {stage name: count}

    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ALLOWED_PHASES:
            fail(f"event {i}: unexpected phase {ph!r}")
        pid = e.get("pid")
        if not isinstance(pid, int):
            fail(f"event {i}: missing pid")
        seen_pids.add(pid)
        if ph == "M":
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i}: bad ts {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i}: complete event with bad dur {dur!r}")
        key = (pid, e.get("tid"))
        if ph == "B":
            begin_depth[key] = begin_depth.get(key, 0) + 1
        elif ph == "E":
            depth = begin_depth.get(key, 0)
            if depth == 0:
                fail(f"event {i}: E without matching B on pid/tid {key}")
            begin_depth[key] = depth - 1
        name = e.get("name", "")
        if ph == "X" and name.startswith("stage:"):
            per = stage_counts.setdefault(pid, {})
            per[name[6:]] = per.get(name[6:], 0) + 1

    unbalanced = {k: d for k, d in begin_depth.items() if d != 0}
    if unbalanced:
        fail(f"unbalanced B/E pairs: {unbalanced}")
    if not seen_pids <= declared_pids:
        fail(f"events reference undeclared pids {seen_pids - declared_pids}")

    for p in processes:
        pid, name = p["pid"], p.get("name", "?")
        if p.get("dropped", 0) != 0:
            print(f"validate_trace: note: {name} dropped {p['dropped']} "
                  "events; skipping stage re-derivation")
            continue
        declared = {k: v for k, v in p.get("stage_activations", {}).items()
                    if v != 0}
        derived = stage_counts.get(pid, {})
        if derived != declared:
            fail(f"{name}: stage counts from events {derived} != declared "
                 f"aggregates {declared}")

    print(f"validate_trace: OK: {len(events)} events, "
          f"{len(processes)} process(es)")


if __name__ == "__main__":
    main()
