#!/usr/bin/env bash
# Full pre-merge check: ASan+UBSan build of the whole tree, the complete
# ctest suite under the sanitizers, and one oracle-gated mini benchmark
# (the full-matrix driver on a filtered workload) so the parallel runner,
# the memoization layer and the differential oracle are exercised
# end-to-end with sanitizers watching.
#
#   $ scripts/check.sh [--keep]      # --keep: don't delete build-asan
set -euo pipefail
cd "$(dirname "$0")/.."

KEEP=0
[[ "${1:-}" == "--keep" ]] && KEEP=1

BUILD=build-asan
JOBS=$(nproc)

echo "== doc drift (CLI table, doc index, markdown links) =="
python3 scripts/validate_docs.py

echo "== configure (ASan+UBSan) =="
cmake --preset asan > /dev/null

echo "== build =="
cmake --build "$BUILD" -j "$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== oracle-gated mini bench =="
# One small slice of the full matrix: four modes of RGB-Gray with the
# determinism repeat, equivalence + invariant checks on. Non-zero exit on
# any oracle violation fails the whole check.
"$BUILD"/bench/bench_a3_fig8_perf --filter RGB --jobs "$JOBS" \
    --json "$BUILD"/BENCH_check.json
grep -q '"ok": true' "$BUILD"/BENCH_check.json

echo "== chaos smoke (fault injection + guard recovery) =="
# The chaos driver injects every fault kind into the VecAdd slice and
# exits non-zero unless every injected run recovers bit-identically to
# the fault-free digest (speculation guard rollback + blacklisting),
# with the sanitizers watching the rollback machinery. The validator
# re-checks the dsa-bench-json/6 contract including the faults block.
"$BUILD"/bench/bench_chaos --filter VecAdd --jobs 2 \
    --json "$BUILD"/BENCH_chaos_check.json
python3 scripts/validate_bench.py "$BUILD"/BENCH_chaos_check.json

echo "== chaos smoke under isolation + journal =="
# The same chaos slice with the resilience layer composed in: every cell
# runs in a forked child (--isolate) and lands in the crash-safe journal.
# Proves the fault-injection path and process isolation compose, with the
# sanitizers watching both sides of the pipe protocol.
rm -f "$BUILD"/CHAOS_check.jnl
"$BUILD"/bench/bench_chaos --filter VecAdd --jobs 2 --isolate \
    --journal "$BUILD"/CHAOS_check.jnl \
    --json "$BUILD"/BENCH_chaos_isolate_check.json
python3 scripts/validate_bench.py "$BUILD"/BENCH_chaos_isolate_check.json
grep -q '"run_status": "complete"' "$BUILD"/BENCH_chaos_isolate_check.json

echo "== generator fuzz smoke under ASan (200 seeds) =="
# 200 generated loop-nest programs (classes round-robin), every one run
# oracle-gated through the fast DSA path AND the --reference twin;
# bench_stream exits non-zero on any fast-vs-reference divergence in
# cycles or output digest. ASan+UBSan watch the generated-program
# interpreter paths. The validator re-checks the stream/gen JSON blocks.
"$BUILD"/bench/bench_stream --gen-seed 11 --gen-count 200 \
    --json "$BUILD"/BENCH_stream_check.json
python3 scripts/validate_bench.py "$BUILD"/BENCH_stream_check.json

echo "== fault suite under ASan =="
# The rollback/blacklist/watchdog tests rewrite CPU state and memory from
# checkpoints; run them once more standalone so a failure localizes.
"$BUILD"/tests/test_fault

echo "== traced mini bench + trace validation =="
# Same driver with event tracing on: the oracle additionally cross-checks
# the trace against the engine counters, and the emitted Chrome JSON is
# validated structurally (B/E balance, stage-count re-derivation).
"$BUILD"/bench/bench_a3_fig8_perf --filter dijkstra --jobs "$JOBS" \
    --trace "$BUILD"/TRACE_check.json
python3 scripts/validate_trace.py "$BUILD"/TRACE_check.json

echo "== kill-and-resume soak smoke =="
# bench_soak runs a seeded sweep, SIGKILLs itself mid-batch, resumes from
# the crash-safe journal and gates on the resumed bench report being
# bit-identical to an uninterrupted run (docs/RESILIENCE.md).
"$BUILD"/bench/bench_soak --steps small --seed 7 \
    --dir "$BUILD"/soak_check.tmp

echo "== runner + resilience suites under TSan =="
# The batch runner's thread pool and the resilience seams (journal
# appends from worker threads, breaker state, drain flag) are the
# concurrency-heavy surfaces; run their suites under ThreadSanitizer.
cmake --preset tsan > /dev/null
cmake --build build-tsan -j "$JOBS" --target test_runner test_resilience \
    test_serve bench_stream
TSAN_OPTIONS="halt_on_error=1" build-tsan/tests/test_runner
TSAN_OPTIONS="halt_on_error=1" build-tsan/tests/test_resilience
# The serving daemon's pool/dispatcher/cache locking under TSan (the
# fork-isolate e2e case self-skips: multi-threaded fork is unsupported).
TSAN_OPTIONS="halt_on_error=1" build-tsan/tests/test_serve

echo "== generator sweep under TSan (64 seeds, --jobs 4) =="
# The 64-seed differential sweep through the batch runner's thread pool:
# generated programs stream through worker threads while the oracle
# cross-checks fast vs reference results, with TSan watching the memo
# and journal seams. (--jobs clamps to the host's hardware threads.)
TSAN_OPTIONS="halt_on_error=1" build-tsan/bench/bench_stream \
    --gen-seed 11 --gen-count 64 --jobs 4 \
    --json build-tsan/BENCH_stream_tsan.json
python3 scripts/validate_bench.py build-tsan/BENCH_stream_tsan.json
rm -rf build-tsan

echo "== release build + throughput smoke =="
# Optimized build via the release preset (-O3, warnings-as-errors), then
# the host-throughput driver on the VecAdd smoke slice. The driver's exit
# code is gated by the differential oracle; the validator re-checks the
# dsa-bench-json/6 contract and that every job reports MIPS > 0.
cmake --preset release > /dev/null
cmake --build build -j "$JOBS" --target bench_throughput
build/bench/bench_throughput --filter VecAdd --repeats 2 \
    --json build/BENCH_throughput_check.json
grep -q '"ok": true' build/BENCH_throughput_check.json
python3 scripts/validate_bench.py build/BENCH_throughput_check.json

echo "== perf smoke (fast vs reference, load-immune) =="
# The interleaved A/B harness runs fast and --reference back-to-back per
# pair on the dispatch-bound microloop, so both sides see the same host
# load and the median-of-pairs ratio is immune to absolute machine speed.
# The fast threaded path measures 6.7-9x on this workload; 3.0x is the
# conservative floor that catches any hot-path regression without being
# flaky under CI load. Digest+cycle equality is enforced on every pair.
build/bench/bench_throughput --filter DispatchMicro \
    --interleave 3 --assert-ratio 3.0

echo "== serving daemon smoke (kill -9, restart, cache bit-identity) =="
# The daemon's whole crash-tolerance story, end to end (docs/SERVING.md):
# a dsa_serve with a --kill-after drill SIGKILLs itself mid-sweep, a
# restarted daemon over the same cache serves the completed cells from
# disk and simulates only the rest, and the merged response is gated
# bit-identical (cycles + output digests) against an uninterrupted
# bench_matrix run of the same cells. A third submit must be fully cached.
cmake --build build -j "$JOBS" --target bench_matrix dsa_serve dsa_submit \
    dsa_chaos_client bench_soak_serve
SOCK=build/dsa_serve_check.sock
CACHE=build/serve_cache_check
rm -rf "$CACHE" "$SOCK"
build/bench/bench_matrix --filter BitCount --jobs "$JOBS" --repeats 1 \
    --json build/BENCH_serve_ref.json
grep -q '"ok": true' build/BENCH_serve_ref.json

wait_for_daemon() {
  for _ in $(seq 1 100); do
    if build/bench/dsa_submit --socket "$SOCK" --ping --quiet \
        > /dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "dsa_serve never answered the ping" >&2
  return 1
}

build/bench/dsa_serve --socket "$SOCK" --cache "$CACHE" --kill-after 2 &
SERVE_PID=$!
wait_for_daemon
set +e
build/bench/dsa_submit --socket "$SOCK" --filter BitCount --quiet
RC=$?
wait "$SERVE_PID"
set -e
# The daemon SIGKILLed itself mid-sweep: the client sees a torn
# connection (exit 5), never a fabricated result.
[[ "$RC" -eq 5 ]]

build/bench/dsa_serve --socket "$SOCK" --cache "$CACHE" &
SERVE_PID=$!
wait_for_daemon
build/bench/dsa_submit --socket "$SOCK" --filter BitCount \
    --json build/SERVE_check.json --quiet
python3 scripts/validate_serve.py build/SERVE_check.json \
    --ref build/BENCH_serve_ref.json --min-cached 2
build/bench/dsa_submit --socket "$SOCK" --filter BitCount \
    --json build/SERVE_check2.json --quiet
python3 scripts/validate_serve.py build/SERVE_check2.json \
    --ref build/BENCH_serve_ref.json --all-cached
# Graceful drain: SIGTERM finishes in-flight work and exits 3.
set +e
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
RC=$?
set -e
[[ "$RC" -eq 3 ]]

echo "== serving daemon crash drill (isolated cell, typed 'crashed') =="
# One cell aborts inside its fork isolate; the daemon classifies it as
# "crashed" while every sibling completes — failure poisons one cell,
# never the sweep.
build/bench/dsa_serve --socket "$SOCK" --isolate \
    --crash-cell "BitCount@neon-dsa/orig" &
SERVE_PID=$!
wait_for_daemon
set +e
build/bench/dsa_submit --socket "$SOCK" --filter BitCount \
    --json build/SERVE_crash_check.json --quiet
RC=$?
set -e
[[ "$RC" -eq 1 ]]  # cells failed, sweep completed
python3 scripts/validate_serve.py build/SERVE_crash_check.json \
    --expect-crashed "BitCount@neon-dsa/orig"
set +e
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
RC=$?
set -e
[[ "$RC" -eq 3 ]]
rm -rf "$CACHE" "$SOCK"

echo "== serve protocol fuzz smoke (seeded hostile clients) =="
# dsa_chaos_client replays a seeded stream of hostile connections —
# garbage bytes, torn frames, oversize headers, slow-loris drips — and
# proves the daemon answers a well-behaved ping after every attack. The
# short read deadline makes the reader reap held connections inside the
# smoke's budget; the health probe then validates the hostile-traffic
# census and a clean SIGTERM drain must still exit 3.
rm -rf "$CACHE" "$SOCK"
build/bench/dsa_serve --socket "$SOCK" --cache "$CACHE" \
    --read-deadline-ms 500 &
SERVE_PID=$!
wait_for_daemon
build/bench/dsa_chaos_client --socket "$SOCK" --seed 11 --rounds 24 \
    --slow-ms 20
build/bench/dsa_submit --socket "$SOCK" --health \
    --json build/SERVE_health_check.json --quiet
python3 scripts/validate_serve.py build/SERVE_health_check.json \
    --expect-health
set +e
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
RC=$?
set -e
[[ "$RC" -eq 3 ]]
rm -rf "$CACHE" "$SOCK"

echo "== kill-and-chaos soak gate (io-faults + kill -9 + scrub) =="
# bench_soak_serve composes the whole hostile-environment story: each
# round installs a seeded io-fault plan, runs chaos clients against the
# daemon, kills it (SIGKILL or --kill-after suicide), plants one byte of
# cache corruption for the next boot scrub, and restarts. The drill gates
# internally on every served cell being bit-identical to an in-process
# reference sweep; the validator re-checks the final response against the
# same reference from the outside.
rm -rf build/soak_serve_check.tmp
build/bench/bench_soak_serve --filter BitCount --seed 7 --rounds 2 \
    --dir build/soak_serve_check.tmp --keep
python3 scripts/validate_serve.py build/soak_serve_check.tmp/final.json \
    --ref build/soak_serve_check.tmp/reference.json --min-cached 1
python3 scripts/validate_serve.py build/soak_serve_check.tmp/health.json \
    --expect-health
rm -rf build/soak_serve_check.tmp

echo "== io-fault + serve suites under standalone UBSan =="
# The injector's bit-twiddling (splitmix64, CRC frames, census arrays)
# and the daemon's reader/dispatcher teardown run once more under
# undefined-behaviour sanitizing without ASan interceptors — the
# configuration closest to the release build.
cmake --preset ubsan > /dev/null
cmake --build build-ubsan -j "$JOBS" --target test_serve test_resilience
UBSAN_OPTIONS="halt_on_error=1" build-ubsan/tests/test_resilience
UBSAN_OPTIONS="halt_on_error=1" build-ubsan/tests/test_serve
rm -rf build-ubsan

if [[ "$KEEP" -eq 0 ]]; then
  rm -rf "$BUILD"
fi
echo "== all checks passed =="
