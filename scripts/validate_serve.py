#!/usr/bin/env python3
"""Structural validator for dsa-serve/1 daemon responses.

Checks that a response dumped by `dsa_submit --json PATH` honours the
contract in docs/SERVING.md:
  * is well-formed JSON carrying the "dsa-serve/1" schema marker with a
    known status ("ok", "interrupted", "deadline", "overload",
    "bad-request"),
  * every cell carries job/workload/mode/cell_status/cached/attempts, a
    known cell_status, and — for "ok" cells — cycles plus a "0x..." hex
    output digest,
  * the cells_ok / cells_failed / cells_cached tallies reconcile with
    the cells array,
  * the cache, pool and breaker telemetry blocks are present with sane
    values (breaker states in closed/open/half-open), including the
    cache store_failures / fsync_failures degradation counters,
  * when a "health" block is present (a `dsa_submit --health` probe) it
    carries the hostile-traffic counters, the boot-scrub census and a
    per-kind io-fault census whose fired tallies never exceed their
    opportunities (--expect-health makes the block mandatory),
and optionally cross-checks the serving path against the CLI path:
  * --ref BENCH.json: every "ok" cell must appear in the bench_matrix
    report (matched by job key) with bit-identical cycles and output
    digest — the cache/restart promise, gated end to end,
  * --min-cached N: at least N cells served from the persistent cache,
  * --all-cached: every cell served from the cache,
  * --expect-crashed KEY: the cell KEY reports cell_status "crashed"
    while every other cell is "ok" (the crash-drill assertion).

Exit code 0 = valid, 1 = validation failure, 2 = usage/IO error.

  $ python3 scripts/validate_serve.py response.json [--ref bench.json]
        [--min-cached N] [--all-cached] [--expect-crashed JOBKEY]
        [--expect-health]
"""
import json
import sys

KNOWN_STATUS = {"ok", "interrupted", "deadline", "overload", "bad-request"}
KNOWN_CELL_STATUS = {"ok", "faulted", "crashed", "timeout", "oom",
                     "skipped", "cancelled"}
REQUIRED_CELL = ["job", "workload", "mode", "cell_status", "cached",
                 "attempts"]
BREAKER_STATES = {"closed", "open", "half-open"}

_errors = []


def err(msg: str) -> None:
    _errors.append(msg)


def load(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_serve: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_cells(resp: dict) -> list:
    cells = resp.get("cells")
    if not isinstance(cells, list):
        err("cells: missing or not an array")
        return []
    seen = set()
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            err(f"{where}: not an object")
            continue
        for field in REQUIRED_CELL:
            if field not in cell:
                err(f"{where}: missing field {field!r}")
        status = cell.get("cell_status")
        if status not in KNOWN_CELL_STATUS:
            err(f"{where}: unknown cell_status {status!r}")
        job = cell.get("job")
        if job in seen:
            err(f"{where}: duplicate job key {job!r}")
        seen.add(job)
        if not isinstance(cell.get("cached"), bool):
            err(f"{where}: cached is not a boolean")
        if status == "ok":
            if not isinstance(cell.get("cycles"), int) or cell["cycles"] <= 0:
                err(f"{where}: ok cell without positive integer cycles")
            digest = cell.get("output_digest")
            if not (isinstance(digest, str) and digest.startswith("0x")
                    and len(digest) == 18):
                err(f"{where}: output_digest {digest!r} is not 0x + 16 hex")
        elif not cell.get("error"):
            err(f"{where}: failed cell ({status}) without an error string")
    return [c for c in cells if isinstance(c, dict)]


def check_tallies(resp: dict, cells: list) -> None:
    ok = sum(1 for c in cells if c.get("cell_status") == "ok")
    failed = sum(1 for c in cells if c.get("cell_status") != "ok")
    cached = sum(1 for c in cells if c.get("cached") is True)
    for name, want in (("cells_ok", ok), ("cells_failed", failed),
                       ("cells_cached", cached)):
        got = resp.get(name)
        if got != want:
            err(f"{name}: reports {got!r}, cells array has {want}")


def check_telemetry(resp: dict) -> None:
    cache = resp.get("cache")
    if not isinstance(cache, dict):
        err("cache: missing telemetry block")
    else:
        for field in ("hits", "misses", "stores", "quarantined",
                      "store_failures", "fsync_failures"):
            v = cache.get(field)
            if not isinstance(v, int) or v < 0:
                err(f"cache.{field}: {v!r} is not a non-negative integer")
    pool = resp.get("pool")
    if not isinstance(pool, dict):
        err("pool: missing telemetry block")
    else:
        for field in ("executed", "escaped", "respawns", "discarded",
                      "live_workers"):
            v = pool.get(field)
            if not isinstance(v, int) or v < 0:
                err(f"pool.{field}: {v!r} is not a non-negative integer")
    breaker = resp.get("breaker")
    if not isinstance(breaker, list):
        err("breaker: missing census array")
    else:
        for i, entry in enumerate(breaker):
            if entry.get("state") not in BREAKER_STATES:
                err(f"breaker[{i}]: unknown state {entry.get('state')!r}")


IO_FAULT_KINDS = ["enospc", "eio", "short-write", "fsync-fail",
                  "rename-fail", "open-fail"]


def check_health(resp: dict, required: bool) -> None:
    health = resp.get("health")
    if health is None:
        if required:
            err("health: block missing (--expect-health)")
        return
    if not isinstance(health, dict):
        err("health: not an object")
        return
    for field in ("requests_served", "corrupt_frames", "read_timeouts",
                  "refused_connections"):
        v = health.get(field)
        if not isinstance(v, int) or v < 0:
            err(f"health.{field}: {v!r} is not a non-negative integer")
    scrub = health.get("scrub")
    if not isinstance(scrub, dict):
        err("health.scrub: missing census")
    else:
        for field in ("checked", "ok", "quarantined"):
            v = scrub.get(field)
            if not isinstance(v, int) or v < 0:
                err(f"health.scrub.{field}: {v!r} is not a non-negative "
                    f"integer")
        if isinstance(scrub.get("checked"), int):
            if scrub.get("ok", 0) + scrub.get("quarantined", 0) > \
                    scrub["checked"]:
                err("health.scrub: ok + quarantined exceeds checked")
    io = health.get("io_faults")
    if not isinstance(io, dict):
        err("health.io_faults: missing census")
        return
    if not isinstance(io.get("active"), bool):
        err("health.io_faults.active: not a boolean")
    if not isinstance(io.get("plan"), str):
        err("health.io_faults.plan: not a string")
    census = io.get("census")
    if not isinstance(census, dict):
        err("health.io_faults.census: missing")
        return
    for kind in IO_FAULT_KINDS:
        entry = census.get(kind)
        if not isinstance(entry, dict):
            err(f"health.io_faults.census.{kind}: missing")
            continue
        opp = entry.get("opportunities")
        fired = entry.get("fired")
        if not isinstance(opp, int) or not isinstance(fired, int):
            err(f"health.io_faults.census.{kind}: non-integer tallies")
        elif fired > opp:
            err(f"health.io_faults.census.{kind}: fired {fired} > "
                f"opportunities {opp}")


def check_ref(cells: list, ref_path: str) -> None:
    ref = load(ref_path)
    by_job = {}
    for result in ref.get("results", []):
        by_job[result.get("job")] = result
    matched = 0
    for cell in cells:
        if cell.get("cell_status") != "ok":
            continue
        job = cell.get("job")
        result = by_job.get(job)
        if result is None:
            err(f"--ref: cell {job!r} has no counterpart in {ref_path}")
            continue
        if cell.get("cycles") != result.get("cycles"):
            err(f"--ref: cell {job!r} cycles {cell.get('cycles')} != "
                f"reference {result.get('cycles')}")
        if cell.get("output_digest") != result.get("output_digest"):
            err(f"--ref: cell {job!r} digest {cell.get('output_digest')} != "
                f"reference {result.get('output_digest')}")
        matched += 1
    if matched == 0:
        err("--ref: no ok cell matched the reference report")


def main() -> None:
    args = sys.argv[1:]
    if not args or args[0].startswith("--"):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = args[0]
    ref_path = None
    min_cached = None
    all_cached = False
    expect_crashed = None
    expect_health = False
    i = 1
    while i < len(args):
        if args[i] == "--ref" and i + 1 < len(args):
            ref_path = args[i + 1]
            i += 2
        elif args[i] == "--expect-health":
            expect_health = True
            i += 1
        elif args[i] == "--min-cached" and i + 1 < len(args):
            min_cached = int(args[i + 1])
            i += 2
        elif args[i] == "--all-cached":
            all_cached = True
            i += 1
        elif args[i] == "--expect-crashed" and i + 1 < len(args):
            expect_crashed = args[i + 1]
            i += 2
        else:
            print(f"validate_serve: unknown argument {args[i]!r}",
                  file=sys.stderr)
            sys.exit(2)

    resp = load(path)
    if resp.get("schema") != "dsa-serve/1":
        err(f"schema: {resp.get('schema')!r} != 'dsa-serve/1'")
    if resp.get("status") not in KNOWN_STATUS:
        err(f"status: unknown {resp.get('status')!r}")

    cells = check_cells(resp)
    check_tallies(resp, cells)
    check_telemetry(resp)
    check_health(resp, expect_health)

    if ref_path is not None:
        check_ref(cells, ref_path)
    if min_cached is not None:
        cached = sum(1 for c in cells if c.get("cached") is True)
        if cached < min_cached:
            err(f"--min-cached: {cached} cached cells < required "
                f"{min_cached}")
    if all_cached:
        fresh = [c.get("job") for c in cells if c.get("cached") is not True]
        if fresh:
            err(f"--all-cached: cells simulated fresh: {fresh}")
    if expect_crashed is not None:
        found = False
        for cell in cells:
            if cell.get("job") == expect_crashed:
                found = True
                if cell.get("cell_status") != "crashed":
                    err(f"--expect-crashed: {expect_crashed!r} has status "
                        f"{cell.get('cell_status')!r}, wanted 'crashed'")
            elif cell.get("cell_status") != "ok":
                err(f"--expect-crashed: sibling {cell.get('job')!r} is "
                    f"{cell.get('cell_status')!r}, wanted 'ok'")
        if not found:
            err(f"--expect-crashed: cell {expect_crashed!r} not in response")

    if _errors:
        print(f"validate_serve: FAIL: {path}", file=sys.stderr)
        for e in _errors:
            print(f"  - {e}", file=sys.stderr)
        sys.exit(1)
    cached = sum(1 for c in cells if c.get("cached") is True)
    print(f"validate_serve: OK: {path} status={resp.get('status')} "
          f"cells={len(cells)} cached={cached}")


if __name__ == "__main__":
    main()
