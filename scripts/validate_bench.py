#!/usr/bin/env python3
"""Structural validator for dsa-bench-json/3 batch reports.

Checks that a file produced by `--json PATH` (sim::WriteBenchJson,
src/sim/runner.cc) honours the contract in docs/BENCH_SCHEMA.md:
  * is well-formed JSON carrying the "dsa-bench-json/3" schema marker,
  * has every required top-level field with a sane value,
  * reconciles the run census: sum of per-result `runs` == executed_runs,
    every "ok" cell ran exactly `repeats` times, and `faulted_cells`
    matches the number of results whose cell_status != "ok",
  * carries an oracle verdict (and, by default, a passing one),
  * has one result object per distinct job with the required fields --
    faulted cells appear with a minimal payload (status, attempts, error)
    instead of being silently dropped,
  * has a host throughput block per completed result with mips > 0
    whenever the run executed at least one interpreter step,
  * cross-checks the `faults` block (fault-injected runs only): the
    per-kind fired counters must sum to total_fired, and
  * uses "0x..." hex form for output digests.

Exit code 0 = valid, 1 = validation failure, 2 = usage/IO error.

  $ python3 scripts/validate_bench.py out.json [--allow-oracle-failure]
"""
import json
import sys

REQUIRED_TOP = [
    "schema", "bench", "jobs", "repeats", "wall_ms", "distinct_jobs",
    "executed_runs", "faulted_cells", "memo_hits", "oracle", "results",
]
# Every result carries its cell status; completed cells carry the stats.
REQUIRED_RESULT_ANY = ["job", "workload", "mode", "config", "cell_status",
                       "attempts", "runs"]
REQUIRED_RESULT_OK = [
    "cycles", "output_ok", "output_digest", "wall_ms", "host", "cpu",
    "l1", "l2", "dram_accesses", "energy",
]
REQUIRED_HOST = ["mips", "wall_ms", "steps"]
REQUIRED_FAULTS = ["plan", "seed", "total_fired", "opportunities", "fired"]
MODES = {"arm-original", "neon-autovec", "neon-handvec", "neon-dsa"}


def fail(msg: str) -> None:
    print(f"validate_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    allow_oracle_failure = "--allow-oracle-failure" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = args[0]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    for k in REQUIRED_TOP:
        if k not in doc:
            fail(f"missing top-level field '{k}'")
    if doc["schema"] != "dsa-bench-json/3":
        fail(f"schema is {doc['schema']!r}, expected 'dsa-bench-json/3'")
    if len(doc["results"]) != doc["distinct_jobs"]:
        fail(f"{len(doc['results'])} results for "
             f"{doc['distinct_jobs']} distinct jobs")
    if doc["wall_ms"] < 0:
        fail("negative batch wall_ms")

    oracle = doc["oracle"]
    for k in ("enabled", "ok", "violations"):
        if k not in oracle:
            fail(f"oracle missing '{k}'")
    if oracle["enabled"] and not oracle["ok"] and not allow_oracle_failure:
        fail(f"oracle reports {len(oracle['violations'])} violation(s)")

    runs_sum = 0
    faulted = 0
    for r in doc["results"]:
        job = r.get("job", "<unnamed>")
        for k in REQUIRED_RESULT_ANY:
            if k not in r:
                fail(f"result {job}: missing '{k}'")
        if r["mode"] not in MODES:
            fail(f"result {job}: unknown mode {r['mode']!r}")
        runs_sum += r["runs"]
        if r["attempts"] < r["runs"]:
            fail(f"result {job}: attempts={r['attempts']} < runs={r['runs']}")
        if r["cell_status"] != "ok":
            faulted += 1
            if not r.get("error"):
                fail(f"result {job}: faulted cell without an 'error'")
            continue  # faulted cells carry a minimal payload only
        for k in REQUIRED_RESULT_OK:
            if k not in r:
                fail(f"result {job}: missing '{k}'")
        digest = r["output_digest"]
        if not (isinstance(digest, str) and digest.startswith("0x")):
            fail(f"result {job}: output_digest {digest!r} not '0x...' hex")
        host = r["host"]
        for k in REQUIRED_HOST:
            if k not in host:
                fail(f"result {job}: host block missing '{k}'")
        if host["steps"] > 0 and not host["mips"] > 0:
            fail(f"result {job}: {host['steps']} steps but "
                 f"mips={host['mips']}")
        if host["wall_ms"] < 0 or r["wall_ms"] < 0:
            fail(f"result {job}: negative wall time")
        if r["runs"] != doc["repeats"]:
            fail(f"result {job}: runs={r['runs']} != repeats")
        if "faults" in r:
            fb = r["faults"]
            for k in REQUIRED_FAULTS:
                if k not in fb:
                    fail(f"result {job}: faults block missing '{k}'")
            if sum(fb["fired"].values()) != fb["total_fired"]:
                fail(f"result {job}: fired counters sum to "
                     f"{sum(fb['fired'].values())}, total_fired says "
                     f"{fb['total_fired']}")

    if runs_sum != doc["executed_runs"]:
        fail(f"per-result runs sum to {runs_sum}, executed_runs says "
             f"{doc['executed_runs']}")
    if faulted != doc["faulted_cells"]:
        fail(f"{faulted} results are faulted, faulted_cells says "
             f"{doc['faulted_cells']}")

    n = len(doc["results"])
    print(f"validate_bench: OK: {path}: {n} results "
          f"({doc['faulted_cells']} faulted), oracle ok={oracle['ok']}")


if __name__ == "__main__":
    main()
