#!/usr/bin/env python3
"""Structural validator for dsa-bench-json/6 batch reports.

Checks that a file produced by `--json PATH` (sim::WriteBenchJson,
src/sim/runner.cc) honours the contract in docs/BENCH_SCHEMA.md:
  * is well-formed JSON carrying the "dsa-bench-json/6" schema marker,
  * has every required top-level field with a sane value,
  * reconciles the run census: sum of per-result `runs` == executed_runs,
    every "ok" cell ran exactly `repeats` times, `faulted_cells` matches
    the number of results whose cell_status != "ok", `cancelled_cells`
    matches the "cancelled" results and `restored_cells` matches the
    results flagged `"restored": true`,
  * checks run_status/cell_status consistency: run_status is "complete"
    or "interrupted", and a "complete" run has no cancelled cells,
  * validates the optional resilience blocks -- `journal` (path /
    restored / appended, restored agreeing with restored_cells) and the
    `breaker` census (per-workload state in closed/open/half-open with
    non-negative counters),
  * carries an oracle verdict (and, by default, a passing one),
  * has one result object per distinct job with the required fields --
    faulted cells appear with a minimal payload (status, attempts, error)
    instead of being silently dropped,
  * has a host throughput block per completed result with mips > 0
    whenever the run executed at least one interpreter step, and an
    optional host.dispatch naming the interpreter core that ran
    ("switch" or "threaded", docs/DISPATCH.md), plus a host.phases
    block (new in /6) whose non-negative dispatch/observe/mem/neon
    millisecond buckets sum to at most host.wall_ms,
  * cross-checks the `faults` block (fault-injected runs only): the
    per-kind fired counters must sum to total_fired,
  * validates the optional `stream` block (bytes > 0; gbps must be
    bytes/cycles at the modeled 1 GHz, cross-checked against `cycles`)
    and the optional `gen` block (seed/class/count with a known
    generator class, consistent across every result of one workload), and
  * uses "0x..." hex form for output digests.

Exit code 0 = valid, 1 = validation failure, 2 = usage/IO error.

  $ python3 scripts/validate_bench.py out.json [--allow-oracle-failure]
"""
import json
import sys

REQUIRED_TOP = [
    "schema", "bench", "jobs", "repeats", "wall_ms", "distinct_jobs",
    "executed_runs", "faulted_cells", "memo_hits", "restored_cells",
    "cancelled_cells", "run_status", "oracle", "results",
]
# Every result carries its cell status; completed cells carry the stats.
REQUIRED_RESULT_ANY = ["job", "workload", "mode", "config", "cell_status",
                       "attempts", "runs"]
REQUIRED_RESULT_OK = [
    "cycles", "output_ok", "output_digest", "wall_ms", "host", "cpu",
    "l1", "l2", "dram_accesses", "energy",
]
REQUIRED_HOST = ["mips", "wall_ms", "steps"]
# host.phases (new in /6): disjoint host-time buckets attributing the wall
# time of the run loop -- each non-negative, summing to at most wall_ms.
REQUIRED_PHASES = ["dispatch_ms", "observe_ms", "mem_ms", "neon_ms"]
# host.dispatch is optional (added in a later /5 revision): the
# interpreter core the batched run loops actually executed on.
DISPATCH_MODES = {"switch", "threaded"}
REQUIRED_STREAM = ["bytes", "gbps"]
REQUIRED_GEN = ["seed", "class", "count"]
GEN_CLASSES = {"counted", "sentinel", "conditional", "nested",
               "stride-variant", "early-exit"}
REQUIRED_FAULTS = ["plan", "seed", "total_fired", "opportunities", "fired"]
REQUIRED_JOURNAL = ["path", "restored", "appended", "write_failures",
                    "fsync_failures"]
REQUIRED_BREAKER_ENTRY = ["workload", "state", "failures", "trips", "skipped"]
MODES = {"arm-original", "neon-autovec", "neon-handvec", "neon-dsa"}
CELL_STATUSES = {"ok", "faulted", "crashed", "timeout", "oom", "skipped",
                 "cancelled"}
RUN_STATUSES = {"complete", "interrupted"}
BREAKER_STATES = {"closed", "open", "half-open"}


def fail(msg: str) -> None:
    print(f"validate_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    allow_oracle_failure = "--allow-oracle-failure" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = args[0]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    for k in REQUIRED_TOP:
        if k not in doc:
            fail(f"missing top-level field '{k}'")
    if doc["schema"] != "dsa-bench-json/6":
        fail(f"schema is {doc['schema']!r}, expected 'dsa-bench-json/6'")
    if len(doc["results"]) != doc["distinct_jobs"]:
        fail(f"{len(doc['results'])} results for "
             f"{doc['distinct_jobs']} distinct jobs")
    if doc["wall_ms"] < 0:
        fail("negative batch wall_ms")
    if doc["run_status"] not in RUN_STATUSES:
        fail(f"run_status {doc['run_status']!r} not in {sorted(RUN_STATUSES)}")
    if doc["run_status"] == "complete" and doc["cancelled_cells"] != 0:
        fail(f"run_status 'complete' but cancelled_cells="
             f"{doc['cancelled_cells']}")

    if "journal" in doc:
        jn = doc["journal"]
        for k in REQUIRED_JOURNAL:
            if k not in jn:
                fail(f"journal block missing '{k}'")
        if not jn["path"]:
            fail("journal block with an empty path")
        if jn["restored"] != doc["restored_cells"]:
            fail(f"journal.restored={jn['restored']} disagrees with "
                 f"restored_cells={doc['restored_cells']}")
        if jn["appended"] < 0:
            fail("negative journal.appended")
        # Host-I/O degradation is typed, never silent: non-zero failure
        # counters must carry the [io-fault] warning string, and a clean
        # journal must not cry wolf.
        failures = jn.get("write_failures", 0) + jn.get("fsync_failures", 0)
        if failures > 0 and "[io-fault]" not in jn.get("warning", ""):
            fail(f"journal reports {failures} host-I/O failure(s) without "
                 f"an [io-fault] warning")
        if failures == 0 and jn.get("warning"):
            fail(f"journal.warning present with zero failures: "
                 f"{jn['warning']!r}")
        for k in ("write_failures", "fsync_failures"):
            if k in jn and (not isinstance(jn[k], int) or jn[k] < 0):
                fail(f"journal.{k}={jn[k]!r} is not a non-negative integer")
    elif doc["restored_cells"] != 0:
        fail(f"restored_cells={doc['restored_cells']} without a journal "
             f"block")

    if "breaker" in doc:
        br = doc["breaker"]
        if br.get("enabled") is not True:
            fail("breaker block present but not enabled")
        if "workloads" not in br:
            fail("breaker block missing 'workloads'")
        for b in br["workloads"]:
            wl = b.get("workload", "<unnamed>")
            for k in REQUIRED_BREAKER_ENTRY:
                if k not in b:
                    fail(f"breaker entry {wl}: missing '{k}'")
            if b["state"] not in BREAKER_STATES:
                fail(f"breaker entry {wl}: state {b['state']!r} not in "
                     f"{sorted(BREAKER_STATES)}")
            for k in ("failures", "trips", "skipped"):
                if not isinstance(b[k], int) or b[k] < 0:
                    fail(f"breaker entry {wl}: {k}={b[k]!r} not a "
                         f"non-negative integer")

    oracle = doc["oracle"]
    for k in ("enabled", "ok", "violations"):
        if k not in oracle:
            fail(f"oracle missing '{k}'")
    if oracle["enabled"] and not oracle["ok"] and not allow_oracle_failure:
        fail(f"oracle reports {len(oracle['violations'])} violation(s)")

    runs_sum = 0
    faulted = 0
    cancelled = 0
    restored = 0
    gen_by_workload = {}
    for r in doc["results"]:
        job = r.get("job", "<unnamed>")
        for k in REQUIRED_RESULT_ANY:
            if k not in r:
                fail(f"result {job}: missing '{k}'")
        if r["mode"] not in MODES:
            fail(f"result {job}: unknown mode {r['mode']!r}")
        if r["cell_status"] not in CELL_STATUSES:
            fail(f"result {job}: unknown cell_status {r['cell_status']!r}")
        runs_sum += r["runs"]
        if r["attempts"] < r["runs"]:
            fail(f"result {job}: attempts={r['attempts']} < runs={r['runs']}")
        if r.get("restored"):
            restored += 1
            if r["cell_status"] != "ok":
                fail(f"result {job}: restored cell with cell_status "
                     f"{r['cell_status']!r}")
        if r["cell_status"] != "ok":
            faulted += 1
            cancelled += r["cell_status"] == "cancelled"
            if not r.get("error"):
                fail(f"result {job}: faulted cell without an 'error'")
            continue  # faulted cells carry a minimal payload only
        for k in REQUIRED_RESULT_OK:
            if k not in r:
                fail(f"result {job}: missing '{k}'")
        digest = r["output_digest"]
        if not (isinstance(digest, str) and digest.startswith("0x")):
            fail(f"result {job}: output_digest {digest!r} not '0x...' hex")
        host = r["host"]
        for k in REQUIRED_HOST:
            if k not in host:
                fail(f"result {job}: host block missing '{k}'")
        if host["steps"] > 0 and not host["mips"] > 0:
            fail(f"result {job}: {host['steps']} steps but "
                 f"mips={host['mips']}")
        if "dispatch" in host and host["dispatch"] not in DISPATCH_MODES:
            fail(f"result {job}: host.dispatch {host['dispatch']!r} not in "
                 f"{sorted(DISPATCH_MODES)}")
        if "phases" not in host:
            fail(f"result {job}: host block missing 'phases' (new in /6)")
        phases = host["phases"]
        for k in REQUIRED_PHASES:
            if k not in phases:
                fail(f"result {job}: host.phases missing '{k}'")
            if not isinstance(phases[k], (int, float)) or phases[k] < 0:
                fail(f"result {job}: host.phases.{k}={phases[k]!r} not a "
                     f"non-negative number")
        phase_sum = sum(phases[k] for k in REQUIRED_PHASES)
        if phase_sum > host["wall_ms"] * 1.0001 + 1e-9:
            fail(f"result {job}: host.phases sum to {phase_sum} ms, more "
                 f"than host.wall_ms={host['wall_ms']}")
        if host["wall_ms"] < 0 or r["wall_ms"] < 0:
            fail(f"result {job}: negative wall time")
        if r["runs"] != doc["repeats"]:
            fail(f"result {job}: runs={r['runs']} != repeats")
        if "stream" in r:
            st = r["stream"]
            for k in REQUIRED_STREAM:
                if k not in st:
                    fail(f"result {job}: stream block missing '{k}'")
            if not isinstance(st["bytes"], int) or st["bytes"] <= 0:
                fail(f"result {job}: stream.bytes={st['bytes']!r} not a "
                     f"positive integer")
            if r["cycles"] > 0:
                expect = st["bytes"] / r["cycles"]
                if abs(st["gbps"] - expect) > max(1e-9, expect * 1e-4):
                    fail(f"result {job}: stream.gbps={st['gbps']} but "
                         f"bytes/cycles={expect}")
        if "gen" in r:
            gb = r["gen"]
            for k in REQUIRED_GEN:
                if k not in gb:
                    fail(f"result {job}: gen block missing '{k}'")
            if gb["class"] not in GEN_CLASSES:
                fail(f"result {job}: gen.class {gb['class']!r} not in "
                     f"{sorted(GEN_CLASSES)}")
            if not isinstance(gb["seed"], int) or gb["seed"] < 0:
                fail(f"result {job}: gen.seed={gb['seed']!r} not a "
                     f"non-negative integer")
            if not isinstance(gb["count"], int) or gb["count"] < 0:
                fail(f"result {job}: gen.count={gb['count']!r} not a "
                     f"non-negative integer")
            prev = gen_by_workload.setdefault(r["workload"], gb)
            if prev != gb:
                fail(f"result {job}: gen block {gb} disagrees with another "
                     f"result of the same workload: {prev}")
        if "faults" in r:
            fb = r["faults"]
            for k in REQUIRED_FAULTS:
                if k not in fb:
                    fail(f"result {job}: faults block missing '{k}'")
            if sum(fb["fired"].values()) != fb["total_fired"]:
                fail(f"result {job}: fired counters sum to "
                     f"{sum(fb['fired'].values())}, total_fired says "
                     f"{fb['total_fired']}")

    if runs_sum != doc["executed_runs"]:
        fail(f"per-result runs sum to {runs_sum}, executed_runs says "
             f"{doc['executed_runs']}")
    if faulted != doc["faulted_cells"]:
        fail(f"{faulted} results are faulted, faulted_cells says "
             f"{doc['faulted_cells']}")
    if cancelled != doc["cancelled_cells"]:
        fail(f"{cancelled} results are cancelled, cancelled_cells says "
             f"{doc['cancelled_cells']}")
    if restored != doc["restored_cells"]:
        fail(f"{restored} results are flagged restored, restored_cells "
             f"says {doc['restored_cells']}")
    if cancelled > 0 and doc["run_status"] != "interrupted":
        fail(f"{cancelled} cancelled cells in a "
             f"{doc['run_status']!r} run")

    n = len(doc["results"])
    print(f"validate_bench: OK: {path}: {n} results "
          f"({doc['faulted_cells']} faulted, {doc['cancelled_cells']} "
          f"cancelled, {doc['restored_cells']} restored), "
          f"run_status={doc['run_status']}, oracle ok={oracle['ok']}")


if __name__ == "__main__":
    main()
