#!/usr/bin/env python3
"""Doc-drift validator: keeps README and docs/ in sync with the code.

Three checks, all derived from the repository itself so they cannot rot:
  * every CLI flag parsed by bench/bench_util.h (the shared bench CLI)
    has a row in README.md's flag table,
  * every docs/*.md file has a row in README.md's documentation index,
  * every intra-repository markdown link in README.md, docs/*.md and the
    top-level *.md files resolves to an existing file (anchors and
    external URLs are ignored).

Exit code 0 = in sync, 1 = drift found, 2 = usage/IO error.

  $ python3 scripts/validate_docs.py [repo-root]
"""
import os
import re
import sys


def fail_list(title: str, items: list) -> None:
    print(f"validate_docs: FAIL: {title}", file=sys.stderr)
    for it in items:
        print(f"  - {it}", file=sys.stderr)


def parsed_bench_flags(root: str) -> set:
    """Flags the shared bench CLI actually parses (arg == "--..." tests)."""
    path = os.path.join(root, "bench", "bench_util.h")
    with open(path, encoding="utf-8") as f:
        src = f.read()
    return set(re.findall(r'arg == "(--[a-z-]+)"', src))


def documented_flags(readme: str) -> set:
    """Flags mentioned in README table rows (| `--flag ...` | ... |).

    A row may document several flags at once (`--journal` / `--resume`),
    so collect every --flag token inside the row's code spans.
    """
    flags = set()
    for line in readme.splitlines():
        if not line.startswith("|"):
            continue
        for span in re.findall(r"`([^`]*)`", line):
            flags.update(re.findall(r"(--[a-z-]+)", span))
    return flags


def doc_index_entries(readme: str) -> set:
    """Link targets of the README's documentation-index table."""
    targets = set()
    for line in readme.splitlines():
        if not line.startswith("|"):
            continue
        targets.update(re.findall(r"\]\(([^)#]+)\)", line))
    return targets


def markdown_files(root: str) -> list:
    files = [os.path.join(root, f) for f in sorted(os.listdir(root))
             if f.endswith(".md")]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        files += [os.path.join(docs, f) for f in sorted(os.listdir(docs))
                  if f.endswith(".md")]
    return files


def broken_links(root: str) -> list:
    """Intra-repo markdown links that do not resolve from their file."""
    broken = []
    link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    for path in markdown_files(root):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        # Links inside fenced code blocks are illustrative, not navigable.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        base = os.path.dirname(path)
        for target in link_re.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not os.path.exists(os.path.join(base, rel)):
                broken.append(f"{os.path.relpath(path, root)} -> {target}")
    return broken


def main() -> None:
    root = sys.argv[1] if len(sys.argv) > 1 else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    readme_path = os.path.join(root, "README.md")
    try:
        with open(readme_path, encoding="utf-8") as f:
            readme = f.read()
        flags = parsed_bench_flags(root)
    except OSError as e:
        print(f"validate_docs: cannot read inputs: {e}", file=sys.stderr)
        sys.exit(2)

    ok = True

    undocumented = sorted(flags - documented_flags(readme))
    if undocumented:
        fail_list("bench CLI flags missing from README's flag table",
                  undocumented)
        ok = False

    indexed = doc_index_entries(readme)
    docs_dir = os.path.join(root, "docs")
    missing_index = sorted(
        f"docs/{f}" for f in os.listdir(docs_dir) if f.endswith(".md")
        and f"docs/{f}" not in indexed)
    if missing_index:
        fail_list("docs/*.md files missing from README's documentation "
                  "index", missing_index)
        ok = False

    dead = broken_links(root)
    if dead:
        fail_list("markdown links that do not resolve", dead)
        ok = False

    if not ok:
        sys.exit(1)
    print(f"validate_docs: OK: {len(flags)} CLI flags documented, "
          f"{len(missing_index) + len(indexed)} docs indexed, "
          f"no dead links in {len(markdown_files(root))} markdown files")


if __name__ == "__main__":
    main()
